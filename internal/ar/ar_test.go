package ar

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"sam/internal/engine"
	"sam/internal/join"
	"sam/internal/metrics"
	"sam/internal/relation"
	"sam/internal/workload"
)

func TestIdentityDiscretizer(t *testing.T) {
	d := NewIdentity(5)
	if d.Bins() != 5 {
		t.Fatalf("bins = %d", d.Bins())
	}
	for c := int32(0); c < 5; c++ {
		if d.BinOf(c) != int(c) {
			t.Fatalf("BinOf(%d) = %d", c, d.BinOf(c))
		}
		if d.BinWidth(int(c)) != 1 {
			t.Fatal("identity bins must have width 1")
		}
	}
}

func TestIntervalDiscretizer(t *testing.T) {
	// Domain 10, constants {3, 7} → cuts {0,3,4,7,8,10} → 5 bins.
	d := NewInterval(10, []int32{3, 7})
	if d.Bins() != 5 {
		t.Fatalf("bins = %d", d.Bins())
	}
	cases := []struct {
		code int32
		bin  int
	}{{0, 0}, {2, 0}, {3, 1}, {4, 2}, {6, 2}, {7, 3}, {8, 4}, {9, 4}}
	for _, c := range cases {
		if got := d.BinOf(c.code); got != c.bin {
			t.Fatalf("BinOf(%d) = %d want %d", c.code, got, c.bin)
		}
	}
	lo, hi := d.BinRange(2)
	if lo != 4 || hi != 7 {
		t.Fatalf("BinRange(2) = [%d,%d)", lo, hi)
	}
}

func TestDiscretizerSampleIn(t *testing.T) {
	d := NewInterval(10, []int32{3, 7})
	rng := rand.New(rand.NewSource(1))
	seen := map[int32]bool{}
	for i := 0; i < 200; i++ {
		c := d.SampleIn(rng, 2) // covers codes 4..6
		if c < 4 || c > 6 {
			t.Fatalf("SampleIn out of bin: %d", c)
		}
		seen[c] = true
	}
	if len(seen) != 3 {
		t.Fatalf("SampleIn not covering bin: %v", seen)
	}
}

func TestMaskIntoFractions(t *testing.T) {
	d := NewInterval(10, []int32{4}) // cuts {0,4,5,10} → bins [0,4),[4,5),[5,10)
	mask := make([]float64, d.Bins())
	// Predicate ≤ 6: covers codes 0..6 → bin0 full, bin1 full, bin2 2/5.
	ok := d.maskInto(mask, []workload.Predicate{{Op: workload.LE, Code: 6}}, 10)
	if !ok {
		t.Fatal("satisfiable predicate reported empty")
	}
	want := []float64{1, 1, 0.4}
	for i := range want {
		if math.Abs(mask[i]-want[i]) > 1e-12 {
			t.Fatalf("mask = %v want %v", mask, want)
		}
	}
	// Exact boundary: ≤ 4 (constant was 4 → boundary aligned).
	ok = d.maskInto(mask, []workload.Predicate{{Op: workload.LE, Code: 4}}, 10)
	if !ok || mask[0] != 1 || mask[1] != 1 || mask[2] != 0 {
		t.Fatalf("aligned mask = %v", mask)
	}
}

func TestMaskIntoINAndConjunction(t *testing.T) {
	d := NewIdentity(8)
	mask := make([]float64, 8)
	ok := d.maskInto(mask, []workload.Predicate{
		{Op: workload.IN, Codes: []int32{1, 3, 5, 3}}, // duplicate 3
		{Op: workload.GE, Code: 3},
	}, 8)
	if !ok {
		t.Fatal("unexpected empty")
	}
	for b, v := range mask {
		want := 0.0
		if b == 3 || b == 5 {
			want = 1
		}
		if v != want {
			t.Fatalf("mask[%d] = %v", b, v)
		}
	}
	// Contradiction → empty.
	if d.maskInto(mask, []workload.Predicate{
		{Op: workload.LE, Code: 2}, {Op: workload.GE, Code: 5},
	}, 8) {
		t.Fatal("contradiction reported satisfiable")
	}
}

// twoColTable builds a single-relation schema with two correlated columns.
func twoColTable(rng *rand.Rand, rows int) *relation.Schema {
	c1 := relation.NewColumn("x", relation.Categorical, 4)
	c2 := relation.NewColumn("y", relation.Categorical, 4)
	for i := 0; i < rows; i++ {
		v := int32(rng.Intn(4))
		c1.Append(v)
		if rng.Float64() < 0.8 {
			c2.Append(v) // y strongly tracks x
		} else {
			c2.Append(int32(rng.Intn(4)))
		}
	}
	return relation.MustSchema(relation.NewTable("t", c1, c2))
}

func TestCompileSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := twoColTable(rng, 100)
	l := join.NewLayout(s)
	wl := &workload.Workload{Queries: []workload.CardQuery{
		{Query: workload.Query{Tables: []string{"t"}, Preds: []workload.Predicate{
			{Table: "t", Column: "x", Op: workload.LE, Code: 1},
		}}, Card: 10},
	}}
	m := NewModel(l, wl.Queries, 100, DefaultConfig())
	spec, err := m.Compile(&wl.Queries[0].Query)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Masks[0] == nil || spec.Masks[1] != nil {
		t.Fatalf("masks: %v", spec.Masks)
	}
	for _, dw := range spec.Downweight {
		if dw {
			t.Fatal("single-table query must not downweight")
		}
	}
}

func TestTrainSingleRelationFidelity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := twoColTable(rng, 400)
	l := join.NewLayout(s)
	queries := workload.GenerateSingleRelation(rng, s.Tables[0], 80, workload.DefaultSingleRelationOptions())
	wl := &workload.Workload{Queries: engine.Label(s, queries)}

	cfg := DefaultTrainConfig()
	cfg.Epochs = 60
	cfg.BatchSize = 40
	cfg.Model.Hidden = 32
	cfg.Seed = 7
	m, err := Train(l, wl, float64(s.Tables[0].NumRows()), cfg)
	if err != nil {
		t.Fatal(err)
	}

	erng := rand.New(rand.NewSource(11))
	var qerrs []float64
	for qi := range wl.Queries {
		est, err := m.Estimate(erng, &wl.Queries[qi].Query, 8)
		if err != nil {
			t.Fatal(err)
		}
		qerrs = append(qerrs, metrics.QError(est, float64(wl.Queries[qi].Card)))
	}
	sort.Float64s(qerrs)
	median := qerrs[len(qerrs)/2]
	if median > 3.0 {
		t.Fatalf("median training Q-Error %.2f too high", median)
	}
}

func TestSampleFOJMatchesMarginals(t *testing.T) {
	// Train on a strongly skewed single column and verify ancestral samples
	// reproduce the marginal.
	c := relation.NewColumn("x", relation.Categorical, 3)
	for i := 0; i < 300; i++ {
		switch {
		case i < 240:
			c.Append(0)
		case i < 290:
			c.Append(1)
		default:
			c.Append(2)
		}
	}
	s := relation.MustSchema(relation.NewTable("t", c))
	l := join.NewLayout(s)
	rng := rand.New(rand.NewSource(5))
	queries := []workload.Query{
		{Tables: []string{"t"}, Preds: []workload.Predicate{{Table: "t", Column: "x", Op: workload.EQ, Code: 0}}},
		{Tables: []string{"t"}, Preds: []workload.Predicate{{Table: "t", Column: "x", Op: workload.EQ, Code: 1}}},
		{Tables: []string{"t"}, Preds: []workload.Predicate{{Table: "t", Column: "x", Op: workload.EQ, Code: 2}}},
		{Tables: []string{"t"}, Preds: []workload.Predicate{{Table: "t", Column: "x", Op: workload.LE, Code: 1}}},
	}
	wl := &workload.Workload{Queries: engine.Label(s, queries)}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 300
	cfg.BatchSize = 4
	cfg.LR = 0.03
	cfg.Model.Hidden = 16
	cfg.Model.HiddenLayers = 1
	m, err := Train(l, wl, 300, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sampler := m.NewSampler()
	dst := make([]int32, 1)
	counts := [3]int{}
	const n = 5000
	for i := 0; i < n; i++ {
		sampler.SampleFOJ(rng, dst)
		counts[dst[0]]++
	}
	p0 := float64(counts[0]) / n
	if math.Abs(p0-0.8) > 0.1 {
		t.Fatalf("P(x=0) sampled %.3f want ≈0.8 (counts %v)", p0, counts)
	}
}

func TestTrainRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := twoColTable(rng, 50)
	l := join.NewLayout(s)
	if _, err := Train(l, &workload.Workload{}, 50, DefaultTrainConfig()); err == nil {
		t.Fatal("empty workload accepted")
	}
	wl := &workload.Workload{Queries: []workload.CardQuery{{
		Query: workload.Query{Tables: []string{"t"}, Preds: []workload.Predicate{
			{Table: "t", Column: "x", Op: workload.EQ, Code: 1},
		}}, Card: 5,
	}}}
	bad := DefaultTrainConfig()
	bad.Epochs = 0
	if _, err := Train(l, wl, 50, bad); err == nil {
		t.Fatal("zero epochs accepted")
	}
}

func TestEstimateJoinQueryUsesFanoutScaling(t *testing.T) {
	// Untrained model sanity: estimates for join queries must be finite and
	// positive, and the spec must mark the right downweight columns.
	aCol := relation.NewColumn("a", relation.Categorical, 2)
	for _, v := range []int32{0, 0, 1, 1} {
		aCol.Append(v)
	}
	a := relation.NewTable("A", aCol)
	bCol := relation.NewColumn("b", relation.Categorical, 3)
	b := relation.NewTable("B", bCol)
	b.Parent = "A"
	for _, v := range []int32{0, 1, 2} {
		bCol.Append(v)
	}
	b.FK = []int64{0, 1, 1}
	s := relation.MustSchema(a, b)
	l := join.NewLayout(s)
	wl := []workload.CardQuery{{
		Query: workload.Query{Tables: []string{"A"}, Preds: []workload.Predicate{
			{Table: "A", Column: "a", Op: workload.EQ, Code: 0},
		}}, Card: 2,
	}}
	m := NewModel(l, wl, float64(engine.FOJSize(s)), DefaultConfig())

	q := workload.Query{Tables: []string{"A"}, Preds: []workload.Predicate{
		{Table: "A", Column: "a", Op: workload.EQ, Code: 0},
	}}
	spec, err := m.Compile(&q)
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := l.FanoutIndex("B")
	if !spec.Downweight[fb] {
		t.Fatal("root-relation query must downweight F_B")
	}
	rng := rand.New(rand.NewSource(9))
	est := m.EstimateSpec(rng, spec, 16)
	if est <= 0 || math.IsNaN(est) || math.IsInf(est, 0) {
		t.Fatalf("estimate %v", est)
	}
}

func TestTrainedJoinModelEstimates(t *testing.T) {
	// End-to-end on a 2-table schema: train on labeled join+single queries,
	// check median Q-Error on the training set is sane.
	rng := rand.New(rand.NewSource(10))
	aCol := relation.NewColumn("a", relation.Categorical, 3)
	a := relation.NewTable("A", aCol)
	bCol := relation.NewColumn("b", relation.Categorical, 3)
	b := relation.NewTable("B", bCol)
	b.Parent = "A"
	for i := 0; i < 60; i++ {
		aCol.Append(int32(rng.Intn(3)))
	}
	for i := 0; i < 150; i++ {
		parent := rng.Intn(60)
		// b correlates with parent's a
		v := aCol.Data[parent]
		if rng.Float64() < 0.3 {
			v = int32(rng.Intn(3))
		}
		bCol.Append(v)
		b.FK = append(b.FK, int64(parent))
	}
	s := relation.MustSchema(a, b)
	l := join.NewLayout(s)
	queries := workload.GenerateMultiRelation(rng, s, 60, workload.DefaultMultiRelationOptions())
	wl := &workload.Workload{Queries: engine.Label(s, queries)}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 80
	cfg.BatchSize = 30
	cfg.Model.Hidden = 32
	m, err := Train(l, wl, float64(engine.FOJSize(s)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	erng := rand.New(rand.NewSource(12))
	var qerrs []float64
	for qi := range wl.Queries {
		est, err := m.Estimate(erng, &wl.Queries[qi].Query, 8)
		if err != nil {
			t.Fatal(err)
		}
		qerrs = append(qerrs, metrics.QError(est, float64(wl.Queries[qi].Card)))
	}
	sort.Float64s(qerrs)
	if med := qerrs[len(qerrs)/2]; med > 5 {
		t.Fatalf("median join Q-Error %.2f too high", med)
	}
}
