package ar

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"sam/internal/engine"
	"sam/internal/join"
	"sam/internal/nn"
	"sam/internal/obs"
	"sam/internal/tensor"
	"sam/internal/workload"
)

// buildTrainerFixture compiles a small single-relation workload into a
// ready trainer with the given worker count.
func buildTrainerFixture(t *testing.T, workers int) (*trainer, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	s := twoColTable(rng, 300)
	l := join.NewLayout(s)
	queries := workload.GenerateSingleRelation(rng, s.Tables[0], 32, workload.DefaultSingleRelationOptions())
	wl := &workload.Workload{Queries: engine.Label(s, queries)}

	cfg := DefaultTrainConfig()
	cfg.Model.Hidden = 16
	cfg.BatchSize = 16
	pop := float64(s.Tables[0].NumRows())
	m := NewModel(l, wl.Queries, pop, cfg.Model)
	var specs []*Spec
	var targets []float64
	for qi := range wl.Queries {
		spec, err := m.Compile(&wl.Queries[qi].Query)
		if err != nil {
			continue
		}
		card := math.Max(float64(wl.Queries[qi].Card), 1)
		specs = append(specs, spec)
		targets = append(targets, math.Log(card/pop))
	}
	if len(specs) < cfg.BatchSize {
		t.Fatalf("fixture compiled only %d specs", len(specs))
	}
	opt := nn.NewAdam(cfg.LR)
	opt.ClipMax = cfg.ClipNorm
	tr := newTrainer(m, specs, targets, cfg, opt, workers)
	batch := make([]int, cfg.BatchSize)
	for i := range batch {
		batch[i] = i
	}
	return tr, batch
}

// TestTrainStepNilObserverAllocs pins the pipeline-level pooling contract:
// with a nil observer, a warm single-worker DPS train step — mask
// construction, the full progressive chain, backward, gradient merge, and
// the Adam update — performs zero heap allocations. This is the guarantee
// that threading obs.Hooks through the trainer costs nothing when disabled
// (the check the tentpole's "nil = zero overhead" claim rests on). Kernels
// run serially because the parallel path allocates goroutine bookkeeping.
func TestTrainStepNilObserverAllocs(t *testing.T) {
	old := tensor.MatMulWorkers()
	tensor.SetMatMulWorkers(1)
	defer tensor.SetMatMulWorkers(old)

	tr, batch := buildTrainerFixture(t, 1)
	step := func() { tr.step(batch, 123, false) }
	step() // warm pool + Adam state
	step() // steady-state slice capacities
	if n := testing.AllocsPerRun(20, step); n != 0 {
		t.Fatalf("warm train step with nil observer allocates %v times, want 0", n)
	}
}

// TestTrainStepLabeledMetricsAllocs is the live-telemetry counterpart of
// TestTrainStepNilObserverAllocs: with obs.MetricsHooks attached to a
// real registry — labeled families included — a warm train step plus its
// TrainStep hook dispatch and a pre-resolved labeled-counter update still
// performs zero heap allocations. This is the guarantee that turning
// metrics ON does not break the hot-path contract: handle resolution
// happens once at hook construction, so the per-step work is atomics only.
func TestTrainStepLabeledMetricsAllocs(t *testing.T) {
	old := tensor.MatMulWorkers()
	tensor.SetMatMulWorkers(1)
	defer tensor.SetMatMulWorkers(old)

	reg := obs.NewRegistry()
	hooks := obs.MetricsHooks(reg)
	labeled := reg.CounterVec("train_batch_rows_total", "table").With("t")

	tr, batch := buildTrainerFixture(t, 1)
	stepIdx := 0
	step := func() {
		loss := tr.step(batch, 123, true)
		stepIdx++
		hooks.TrainStep(obs.TrainStep{
			Step: stepIdx, Loss: loss, GradNorm: tr.lastGradNorm, Wall: 1e6,
		})
		labeled.Add(int64(len(batch)))
	}
	step() // warm pool + Adam state
	step() // steady-state slice capacities
	if n := testing.AllocsPerRun(20, step); n != 0 {
		t.Fatalf("warm train step with live labeled metrics allocates %v times, want 0", n)
	}
	if got := reg.Counter("train_steps_total").Value(); got < 20 {
		t.Fatalf("hook did not reach the registry: train_steps_total = %d", got)
	}
	if got := labeled.Value(); got < int64(20*len(batch)) {
		t.Fatalf("labeled counter = %d, want ≥ %d", got, 20*len(batch))
	}
}

// TestTrainHooksObserveSteps drives Train end to end with hooks attached
// and checks the per-epoch and per-step signals arrive with sane values.
func TestTrainHooksObserveSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := twoColTable(rng, 200)
	l := join.NewLayout(s)
	queries := workload.GenerateSingleRelation(rng, s.Tables[0], 24, workload.DefaultSingleRelationOptions())
	wl := &workload.Workload{Queries: engine.Label(s, queries)}

	var epochs []obs.TrainEpoch
	var steps []obs.TrainStep
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	cfg.BatchSize = 8
	cfg.Workers = 2
	cfg.Model.Hidden = 12
	cfg.Hooks = &obs.Hooks{
		OnTrainEpoch: func(e obs.TrainEpoch) { epochs = append(epochs, e) },
		OnTrainStep:  func(st obs.TrainStep) { steps = append(steps, st) },
	}
	tr := obs.NewTrace("test")
	cfg.Span = tr.Root()
	if _, err := Train(l, wl, float64(s.Tables[0].NumRows()), cfg); err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 3 {
		t.Fatalf("got %d epoch events, want 3", len(epochs))
	}
	for _, e := range epochs {
		if e.Epochs != 3 || e.Steps == 0 || e.Wall <= 0 {
			t.Fatalf("bad epoch event: %+v", e)
		}
		if math.IsNaN(e.Loss) || e.GradNorm < 0 || math.IsNaN(e.GradNorm) {
			t.Fatalf("bad epoch stats: %+v", e)
		}
	}
	wantSteps := 3 * ((24 + 7) / 8)
	if len(steps) != wantSteps {
		t.Fatalf("got %d step events, want %d", len(steps), wantSteps)
	}
	if steps[len(steps)-1].Step != wantSteps {
		t.Fatalf("last step index = %d, want %d", steps[len(steps)-1].Step, wantSteps)
	}
	for _, st := range steps {
		if st.Wall <= 0 || st.GradNorm <= 0 {
			t.Fatalf("bad step event: %+v", st)
		}
	}
	// The trace must contain train > {compile, epochs} spans.
	tr.Root().End()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, rec := range recs {
		names[rec.Name] = true
	}
	for _, want := range []string{"train", "compile", "epochs"} {
		if !names[want] {
			t.Fatalf("trace missing span %q (have %v)", want, names)
		}
	}
}
