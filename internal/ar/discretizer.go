// Package ar implements SAM's query-driven autoregressive model: the
// intervalization of column domains from workload constants (§4.3.2,
// "Handling numerical columns"), the compilation of conjunctive queries
// into per-column bin masks, Differentiable-Progressive-Sampling training
// from (query, cardinality) pairs (§4.1), progressive-sampling cardinality
// estimation, and ancestral full-outer-join tuple sampling for generation.
package ar

import (
	"fmt"
	"math/rand"
	"sort"

	"sam/internal/workload"
)

// Discretizer maps a column's raw codes onto model bins. Bin b covers raw
// codes [cuts[b], cuts[b+1]). Identity discretizers have one code per bin;
// interval discretizers cut the domain at workload constants, shrinking
// large numeric domains to a handful of intervals.
type Discretizer struct {
	cuts []int32 // ascending, cuts[0] == 0, cuts[len-1] == domain
}

// NewIdentity returns a discretizer with one bin per code.
func NewIdentity(domain int) *Discretizer {
	cuts := make([]int32, domain+1)
	for i := range cuts {
		cuts[i] = int32(i)
	}
	return &Discretizer{cuts: cuts}
}

// NewInterval builds an interval discretizer over [0, domain) from the
// distinct predicate constants observed in the workload. For every literal
// v both v and v+1 become cut points, so LE/GE/EQ predicates on observed
// constants align exactly with bin boundaries.
func NewInterval(domain int, constants []int32) *Discretizer {
	set := map[int32]bool{0: true, int32(domain): true}
	for _, v := range constants {
		if v < 0 || int(v) >= domain {
			panic(fmt.Sprintf("ar: constant %d outside domain %d", v, domain))
		}
		set[v] = true
		set[v+1] = true
	}
	cuts := make([]int32, 0, len(set))
	for v := range set {
		cuts = append(cuts, v)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	return &Discretizer{cuts: cuts}
}

// Cuts returns a copy of the bin boundaries (for serialization).
func (d *Discretizer) Cuts() []int32 { return append([]int32(nil), d.cuts...) }

// FromCuts rebuilds a discretizer from serialized boundaries.
func FromCuts(cuts []int32) (*Discretizer, error) {
	if len(cuts) < 2 || cuts[0] != 0 {
		return nil, fmt.Errorf("ar: invalid cuts %v", cuts)
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			return nil, fmt.Errorf("ar: cuts not strictly ascending at %d", i)
		}
	}
	return &Discretizer{cuts: append([]int32(nil), cuts...)}, nil
}

// Bins returns the number of bins.
func (d *Discretizer) Bins() int { return len(d.cuts) - 1 }

// BinOf returns the bin containing a raw code.
func (d *Discretizer) BinOf(code int32) int {
	// Find the rightmost cut ≤ code.
	lo, hi := 0, len(d.cuts)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if d.cuts[mid] <= code {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// BinRange returns the raw-code range [lo, hi) of bin b.
func (d *Discretizer) BinRange(b int) (lo, hi int32) {
	return d.cuts[b], d.cuts[b+1]
}

// BinWidth returns the number of raw codes in bin b.
func (d *Discretizer) BinWidth(b int) int {
	return int(d.cuts[b+1] - d.cuts[b])
}

// SampleIn draws a uniform raw code inside bin b — the paper's decoding of
// intervalized numeric columns after Group-and-Merge.
func (d *Discretizer) SampleIn(rng *rand.Rand, b int) int32 {
	lo, hi := d.BinRange(b)
	if hi-lo == 1 {
		return lo
	}
	return lo + int32(rng.Intn(int(hi-lo)))
}

// MaskForPredicates returns the fractional bin-coverage mask of a
// conjunction of predicates over this column, and whether any bin has
// positive mass. Shared by the SAM model and the PGM baseline.
func (d *Discretizer) MaskForPredicates(preds []workload.Predicate, domain int) ([]float64, bool) {
	mask := make([]float64, d.Bins())
	ok := d.maskInto(mask, preds, domain)
	return mask, ok
}

// maskInto fills mask (length Bins()) with the fraction of each bin's codes
// that satisfy the conjunction of predicates. Range predicates intersect
// into [rlo, rhi]; an optional IN list restricts further. The result is
// the fractional coverage RangeProb and STGumbel consume. It reports
// whether any bin has positive mass.
func (d *Discretizer) maskInto(mask []float64, preds []workload.Predicate, domain int) bool {
	rlo, rhi := int32(0), int32(domain-1)
	var inList []int32
	for i := range preds {
		p := &preds[i]
		if lo, hi, ok := p.Range(domain); ok {
			if lo > rlo {
				rlo = lo
			}
			if hi < rhi {
				rhi = hi
			}
			continue
		}
		// IN: intersect lists.
		if inList == nil {
			inList = append(inList, p.Codes...)
			continue
		}
		merged := inList[:0]
		for _, c := range inList {
			if p.Matches(c) {
				merged = append(merged, c)
			}
		}
		inList = merged
	}
	any := false
	if inList != nil {
		for i := range mask {
			mask[i] = 0
		}
		seen := map[int32]bool{}
		for _, c := range inList {
			if c < rlo || c > rhi || seen[c] {
				continue
			}
			seen[c] = true
			b := d.BinOf(c)
			mask[b] += 1 / float64(d.BinWidth(b))
			any = true
		}
		return any
	}
	for b := range mask {
		blo, bhi := d.BinRange(b) // [blo, bhi)
		lo, hi := rlo, rhi+1      // [lo, hi)
		if lo < blo {
			lo = blo
		}
		if hi > bhi {
			hi = bhi
		}
		if hi > lo {
			mask[b] = float64(hi-lo) / float64(bhi-blo)
			any = true
		} else {
			mask[b] = 0
		}
	}
	return any
}
