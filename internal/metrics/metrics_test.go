package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"sam/internal/relation"
)

func TestQError(t *testing.T) {
	cases := []struct{ est, truth, want float64 }{
		{10, 10, 1},
		{20, 10, 2},
		{10, 20, 2},
		{0, 10, 10}, // floored at 1
		{10, 0, 10},
		{0, 0, 1},
	}
	for i, c := range cases {
		if got := QError(c.est, c.truth); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("case %d: QError = %v want %v", i, got, c.want)
		}
	}
}

func TestQErrorQuickProperties(t *testing.T) {
	f := func(a, b uint16) bool {
		est, truth := float64(a), float64(b)
		q := QError(est, truth)
		if q < 1 {
			return false
		}
		// Symmetry.
		return QError(truth, est) == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	s := Summarize(xs)
	if s.Median != 3 || s.Max != 5 || s.Mean != 3 {
		t.Fatalf("summary %+v", s)
	}
	if s.P75 != 4 || s.P90 != 4.6 {
		t.Fatalf("percentiles %+v", s)
	}
}

func TestPercentileEdges(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Percentile(xs, 0) != 1 || Percentile(xs, 1) != 4 {
		t.Fatal("edge percentiles broken")
	}
	if got := Percentile(xs, 0.5); got != 2.5 {
		t.Fatalf("median of even-sized slice: %v", got)
	}
	one := []float64{7}
	if Percentile(one, 0.9) != 7 {
		t.Fatal("singleton percentile broken")
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Summarize(nil)
}

func mkTable(rows [][]int32, domains []int) *relation.Table {
	cols := make([]*relation.Column, len(domains))
	for j, d := range domains {
		cols[j] = relation.NewColumn(string(rune('a'+j)), relation.Categorical, d)
	}
	for _, r := range rows {
		for j := range domains {
			cols[j].Append(r[j])
		}
	}
	return relation.NewTable("t", cols...)
}

func TestCrossEntropyIdenticalTables(t *testing.T) {
	rows := [][]int32{{0, 1}, {1, 0}, {0, 1}, {1, 1}}
	a := mkTable(rows, []int{2, 2})
	b := mkTable(rows, []int{2, 2})
	h := CrossEntropyBits(a, b)
	// Self cross-entropy equals the empirical entropy: tuples (0,1)×2,
	// (1,0), (1,1): H = -(2/4·log2(2/4) + 2·(1/4·log2(1/4))) = 1.5 bits.
	if math.Abs(h-1.5) > 1e-9 {
		t.Fatalf("self cross entropy %v want 1.5", h)
	}
}

func TestCrossEntropyPenalizesMisses(t *testing.T) {
	orig := mkTable([][]int32{{0, 0}, {1, 1}}, []int{2, 2})
	close := mkTable([][]int32{{0, 0}, {1, 1}}, []int{2, 2})
	far := mkTable([][]int32{{0, 1}, {1, 0}}, []int{2, 2})
	hClose := CrossEntropyBits(orig, close)
	hFar := CrossEntropyBits(orig, far)
	if hFar <= hClose {
		t.Fatalf("misses not penalized: close %v far %v", hClose, hFar)
	}
}

func TestCrossEntropyMismatchedSchemasPanics(t *testing.T) {
	a := mkTable([][]int32{{0}}, []int{2})
	b := mkTable([][]int32{{0, 0}}, []int{2, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CrossEntropyBits(a, b)
}

func TestDeviations(t *testing.T) {
	orig := []int64{1_000_000, 5_000_000}
	gen := []int64{3_000_000, 4_000_000}
	d := Deviations(orig, gen)
	if d[0] != 2 || d[1] != 1 {
		t.Fatalf("deviations %v", d)
	}
}

func TestDeviationsUnpairedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Deviations([]int64{1}, []int64{1, 2})
}
