// Package metrics implements the paper's evaluation metrics: Q-Error with
// the usual percentile summaries (median/75th/90th/mean/max), the cross
// entropy between the original and generated relations (Eq. 1), and the
// performance deviation of query latencies (Tables 8–9).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"sam/internal/relation"
)

// QError returns max(est/truth, truth/est) with both arguments floored at 1
// (the cardinality-estimation convention for handling zeros; Moerkotte et
// al., PVLDB'09).
func QError(est, truth float64) float64 {
	if est < 1 {
		est = 1
	}
	if truth < 1 {
		truth = 1
	}
	if est > truth {
		return est / truth
	}
	return truth / est
}

// Summary aggregates a metric sample the way the paper's tables do.
type Summary struct {
	Median float64
	P75    float64
	P90    float64
	Mean   float64
	Max    float64
}

// Summarize computes the summary of xs (which it sorts in place). It panics
// on empty input: every experiment must produce at least one measurement.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("metrics: Summarize of empty sample")
	}
	sort.Float64s(xs)
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return Summary{
		Median: Percentile(xs, 0.50),
		P75:    Percentile(xs, 0.75),
		P90:    Percentile(xs, 0.90),
		Mean:   sum / float64(len(xs)),
		Max:    xs[len(xs)-1],
	}
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of an ascending-sorted
// slice using linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("metrics: Percentile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// String renders the summary in one line.
func (s Summary) String() string {
	return fmt.Sprintf("median=%.4g p75=%.4g p90=%.4g mean=%.4g max=%.4g",
		s.Median, s.P75, s.P90, s.Mean, s.Max)
}

// tupleKey serializes a row of codes into a compact map key.
func tupleKey(codes []int32) string {
	buf := make([]byte, 0, len(codes)*4)
	for _, c := range codes {
		buf = append(buf, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
	}
	return string(buf)
}

// CrossEntropyBits computes H(T, T̂) = −E_{x∼T}[log₂ Sel̂(x)] (Eq. 1): the
// expected negative log selectivity, under the generated relation, of
// tuples drawn from the original relation. In high-dimensional relations
// most tuples are unique, so exact-match selectivity alone would be
// infinite for every miss; a missing tuple instead falls back to the
// product of the generated relation's smoothed per-column marginals — a
// back-off that keeps the metric finite, sensitive to how close the
// generated distribution is, and on the same scale the paper reports.
func CrossEntropyBits(orig, gen *relation.Table) float64 {
	if len(orig.Cols) != len(gen.Cols) {
		panic("metrics: cross entropy over mismatched schemas")
	}
	genN := gen.NumRows()
	if genN == 0 || orig.NumRows() == 0 {
		panic("metrics: cross entropy over empty relation")
	}
	counts := make(map[string]int, genN)
	row := make([]int32, len(gen.Cols))
	marginals := make([][]float64, len(gen.Cols))
	for j, c := range gen.Cols {
		marginals[j] = make([]float64, c.NumValues)
	}
	for i := 0; i < genN; i++ {
		for j, c := range gen.Cols {
			row[j] = c.Data[i]
			marginals[j][c.Data[i]]++
		}
		counts[tupleKey(row)]++
	}
	// Additive smoothing: every marginal cell gets 1/2 pseudo-count.
	for j := range marginals {
		total := float64(genN) + 0.5*float64(len(marginals[j]))
		for v := range marginals[j] {
			marginals[j][v] = (marginals[j][v] + 0.5) / total
		}
	}
	var h float64
	n := orig.NumRows()
	for i := 0; i < n; i++ {
		for j, c := range orig.Cols {
			row[j] = c.Data[i]
		}
		if cnt := counts[tupleKey(row)]; cnt > 0 {
			h += -math.Log2(float64(cnt) / float64(genN))
		} else {
			var logp float64
			for j := range row {
				logp += math.Log2(marginals[j][row[j]])
			}
			h += -logp
		}
	}
	return h / float64(n)
}

// Deviations returns |a_i − b_i| in milliseconds for paired latency samples
// expressed in nanoseconds — the per-query performance deviation.
func Deviations(origNanos, genNanos []int64) []float64 {
	if len(origNanos) != len(genNanos) {
		panic("metrics: Deviations over unpaired samples")
	}
	out := make([]float64, len(origNanos))
	for i := range origNanos {
		out[i] = math.Abs(float64(genNanos[i]-origNanos[i])) / 1e6
	}
	return out
}
