package pgm

import (
	"math/rand"

	"sam/internal/workload"
)

// term references one clique cell with a coefficient.
type term struct {
	clique int
	cell   int
	coef   float64
}

// eq is one linear constraint Σ coef·x = rhs.
type eq struct {
	terms []term
	rhs   float64
	norm2 float64
}

// maxSeparatorCells bounds the number of consistency equations added per
// junction-tree edge.
const maxSeparatorCells = 20000

// solve builds the constraint system — cardinality constraints,
// per-clique normalization, separator consistency — and runs projected
// Kaczmarz sweeps (successive projections onto each hyperplane, clipping
// to the nonnegative orthant after every sweep). This is the "solving a
// system of linear equations" step whose size is the method's complexity
// bottleneck.
func (vm *ViewModel) solve(queries []workload.CardQuery, cfg Config) error {
	var system []eq

	// Cardinality constraints.
	var idxs []int
	for qi := range queries {
		q := &queries[qi]
		idxs = idxs[:0]
		masks := make(map[int][]float64)
		satisfiable := true
		byAttr := make(map[int][]workload.Predicate)
		for _, p := range q.Preds {
			idx := vm.attrIdx[p.Table+"."+p.Column]
			byAttr[idx] = append(byAttr[idx], p)
		}
		for idx, preds := range byAttr {
			m, ok := vm.Attrs[idx].Disc.MaskForPredicates(preds, vm.Attrs[idx].Domain)
			if !ok {
				satisfiable = false
				break
			}
			masks[idx] = m
			idxs = append(idxs, idx)
		}
		if !satisfiable {
			continue
		}
		sortInts(idxs)
		ci := vm.cliqueFor(idxs)
		if ci < 0 {
			// Cannot happen for co-filtered attributes on a chordal cover;
			// skip defensively.
			continue
		}
		cl := vm.Cliques[ci]
		bins := make([]int, len(cl))
		cells := len(vm.Joint[ci])
		e := eq{rhs: float64(q.Card) / vm.Population}
		for cell := 0; cell < cells; cell++ {
			vm.cellBins(ci, cell, bins)
			coef := 1.0
			for pos, ai := range cl {
				if m, ok := masks[ai]; ok {
					coef *= m[bins[pos]]
					if coef == 0 {
						break
					}
				}
			}
			if coef > 0 {
				e.terms = append(e.terms, term{clique: ci, cell: cell, coef: coef})
				e.norm2 += coef * coef
			}
		}
		if len(e.terms) > 0 {
			system = append(system, e)
		}
	}

	// Normalization per clique.
	for ci := range vm.Cliques {
		e := eq{rhs: 1}
		for cell := range vm.Joint[ci] {
			e.terms = append(e.terms, term{clique: ci, cell: cell, coef: 1})
		}
		e.norm2 = float64(len(e.terms))
		system = append(system, e)
	}

	// Separator consistency along the junction tree.
	for _, te := range vm.Tree {
		sepBins := 1
		for _, ai := range te.sep {
			sepBins *= vm.Attrs[ai].Disc.Bins()
		}
		if sepBins > maxSeparatorCells {
			continue
		}
		system = append(system, vm.consistencyEqs(te, sepBins)...)
	}

	// Projected Kaczmarz.
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(system))
	for i := range order {
		order[i] = i
	}
	for sweep := 0; sweep < cfg.SolverSweeps; sweep++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, ei := range order {
			e := &system[ei]
			if e.norm2 == 0 {
				continue
			}
			var dot float64
			for _, t := range e.terms {
				dot += t.coef * vm.Joint[t.clique][t.cell]
			}
			r := (e.rhs - dot) / e.norm2
			for _, t := range e.terms {
				vm.Joint[t.clique][t.cell] += r * t.coef
			}
		}
		for ci := range vm.Joint {
			for cell, v := range vm.Joint[ci] {
				if v < 0 {
					vm.Joint[ci][cell] = 0
				}
			}
		}
	}
	return nil
}

// consistencyEqs emits, for every separator cell, the equation equating
// both cliques' marginals over that cell.
func (vm *ViewModel) consistencyEqs(te treeEdge, sepBins int) []eq {
	posIn := func(cl []int, ai int) int {
		for p, v := range cl {
			if v == ai {
				return p
			}
		}
		return -1
	}
	clA, clB := vm.Cliques[te.a], vm.Cliques[te.b]
	posA := make([]int, len(te.sep))
	posB := make([]int, len(te.sep))
	for si, ai := range te.sep {
		posA[si] = posIn(clA, ai)
		posB[si] = posIn(clB, ai)
	}
	dims := make([]int, len(te.sep))
	for si, ai := range te.sep {
		dims[si] = vm.Attrs[ai].Disc.Bins()
	}
	eqs := make([]eq, 0, sepBins)
	binsA := make([]int, len(clA))
	binsB := make([]int, len(clB))
	sepCell := make([]int, len(te.sep))
	for flat := 0; flat < sepBins; flat++ {
		rem := flat
		for si := len(dims) - 1; si >= 0; si-- {
			sepCell[si] = rem % dims[si]
			rem /= dims[si]
		}
		var e eq
		for cell := range vm.Joint[te.a] {
			vm.cellBins(te.a, cell, binsA)
			match := true
			for si := range te.sep {
				if binsA[posA[si]] != sepCell[si] {
					match = false
					break
				}
			}
			if match {
				e.terms = append(e.terms, term{clique: te.a, cell: cell, coef: 1})
				e.norm2++
			}
		}
		for cell := range vm.Joint[te.b] {
			vm.cellBins(te.b, cell, binsB)
			match := true
			for si := range te.sep {
				if binsB[posB[si]] != sepCell[si] {
					match = false
					break
				}
			}
			if match {
				e.terms = append(e.terms, term{clique: te.b, cell: cell, coef: -1})
				e.norm2++
			}
		}
		if len(e.terms) > 0 {
			eqs = append(eqs, e)
		}
	}
	return eqs
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
