package pgm

import (
	"fmt"
	"sort"
	"strings"

	"sam/internal/ar"
	"sam/internal/relation"
	"sam/internal/workload"
)

// Config controls the PGM baseline.
type Config struct {
	// SolverSweeps is the number of full Kaczmarz sweeps over the linear
	// system.
	SolverSweeps int
	// MaxCells bounds the joint-table size of a single clique; exceeding it
	// is an error (the complexity wall the paper describes).
	MaxCells int
	Seed     int64
}

// DefaultConfig returns a configuration suitable for the small workloads
// PGM can handle.
func DefaultConfig() Config {
	return Config{SolverSweeps: 400, MaxCells: 4_000_000, Seed: 1}
}

// attrInfo is one filtered attribute of a view.
type attrInfo struct {
	Table  string
	Column string
	Domain int
	Disc   *ar.Discretizer
}

func (a attrInfo) key() string { return a.Table + "." + a.Column }

// ViewModel is the PGM of one view (a distinct joined-table set in the
// workload): maximal-clique joint distributions over intervalized filtered
// attributes, fit to the view's cardinality constraints.
type ViewModel struct {
	Tables  []string // sorted
	Attrs   []attrInfo
	attrIdx map[string]int
	Cliques [][]int    // sorted attr indices, maximal
	Tree    []treeEdge // junction tree
	Joint   [][]float64
	// Population is the view's total row count (|T| or the inner-join
	// size), the normalization constant of the cardinality constraints.
	Population float64
}

// viewKey canonicalizes a table set.
func viewKey(tables []string) string {
	ts := append([]string(nil), tables...)
	sort.Strings(ts)
	return strings.Join(ts, "|")
}

// buildViewModel constructs and fits one view's PGM.
func buildViewModel(s *relation.Schema, tables []string, queries []workload.CardQuery,
	population float64, cfg Config) (*ViewModel, error) {
	ts := append([]string(nil), tables...)
	sort.Strings(ts)
	vm := &ViewModel{Tables: ts, attrIdx: make(map[string]int), Population: population}

	// Collect filtered attributes and their constants.
	constants := make(map[string][]int32)
	for qi := range queries {
		for _, p := range queries[qi].Preds {
			key := p.Table + "." + p.Column
			if _, ok := vm.attrIdx[key]; !ok {
				col := s.Table(p.Table).Col(p.Column)
				vm.attrIdx[key] = len(vm.Attrs)
				vm.Attrs = append(vm.Attrs, attrInfo{Table: p.Table, Column: p.Column, Domain: col.NumValues})
			}
			if p.Op == workload.IN {
				constants[key] = append(constants[key], p.Codes...)
			} else {
				constants[key] = append(constants[key], p.Code)
			}
		}
	}
	if len(vm.Attrs) == 0 {
		return nil, fmt.Errorf("pgm: view %v has no filtered attributes", ts)
	}
	for i := range vm.Attrs {
		vm.Attrs[i].Disc = ar.NewInterval(vm.Attrs[i].Domain, constants[vm.Attrs[i].key()])
	}

	// Markov network: co-filtered attributes are connected.
	g := newGraph(len(vm.Attrs))
	var idxs []int
	for qi := range queries {
		idxs = idxs[:0]
		seen := map[int]bool{}
		for _, p := range queries[qi].Preds {
			idx := vm.attrIdx[p.Table+"."+p.Column]
			if !seen[idx] {
				seen[idx] = true
				idxs = append(idxs, idx)
			}
		}
		for i := 0; i < len(idxs); i++ {
			for j := i + 1; j < len(idxs); j++ {
				g.addEdge(idxs[i], idxs[j])
			}
		}
	}
	chordal, order := chordalize(g)
	vm.Cliques = maximalCliques(chordal, order)
	vm.Tree = junctionTree(vm.Cliques)

	// Allocate clique joints.
	vm.Joint = make([][]float64, len(vm.Cliques))
	for ci, cl := range vm.Cliques {
		cells := 1
		for _, ai := range cl {
			cells *= vm.Attrs[ai].Disc.Bins()
			if cells > cfg.MaxCells {
				return nil, fmt.Errorf("pgm: clique over %v exceeds %d cells", cl, cfg.MaxCells)
			}
		}
		joint := make([]float64, cells)
		uniform := 1 / float64(cells)
		for i := range joint {
			joint[i] = uniform
		}
		vm.Joint[ci] = joint
	}

	if err := vm.solve(queries, cfg); err != nil {
		return nil, err
	}
	return vm, nil
}

// cellBins decodes a flat cell index of clique ci into per-attr bins (in
// clique order).
func (vm *ViewModel) cellBins(ci int, cell int, out []int) {
	cl := vm.Cliques[ci]
	for i := len(cl) - 1; i >= 0; i-- {
		bins := vm.Attrs[cl[i]].Disc.Bins()
		out[i] = cell % bins
		cell /= bins
	}
}

// cliqueFor returns the smallest clique containing all attr indices, or -1.
func (vm *ViewModel) cliqueFor(idxs []int) int {
	best, bestSize := -1, 1<<30
	for ci, cl := range vm.Cliques {
		if subsetOf(idxs, cl) && len(cl) < bestSize {
			best, bestSize = ci, len(cl)
		}
	}
	return best
}

// PGM is the full baseline: one ViewModel per distinct table set in the
// workload.
type PGM struct {
	Schema *relation.Schema
	Views  map[string]*ViewModel
	Sizes  map[string]int
	cfg    Config
}

// Train fits the PGM baseline. populations maps each view key (sorted
// table names joined by "|") to its total size; single-table views default
// to the table's target size from sizes.
func Train(s *relation.Schema, wl *workload.Workload, sizes map[string]int,
	populations map[string]float64, cfg Config) (*PGM, error) {
	if wl.Len() == 0 {
		return nil, fmt.Errorf("pgm: empty workload")
	}
	byView := make(map[string][]workload.CardQuery)
	for _, q := range wl.Queries {
		byView[viewKey(q.Tables)] = append(byView[viewKey(q.Tables)], q)
	}
	p := &PGM{Schema: s, Views: make(map[string]*ViewModel), Sizes: sizes, cfg: cfg}
	keys := make([]string, 0, len(byView))
	for k := range byView {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		queries := byView[key]
		tables := strings.Split(key, "|")
		pop, ok := populations[key]
		if !ok {
			if len(tables) == 1 {
				pop = float64(sizes[tables[0]])
			} else {
				return nil, fmt.Errorf("pgm: missing population for view %s", key)
			}
		}
		if pop <= 0 {
			// An empty view constrains nothing; skip it.
			continue
		}
		vm, err := buildViewModel(s, tables, queries, pop, cfg)
		if err != nil {
			return nil, err
		}
		p.Views[key] = vm
	}
	return p, nil
}

// viewFor returns the smallest trained view whose table set contains all
// of tables, or nil. Views are scanned in sorted key order so ties resolve
// deterministically.
func (p *PGM) viewFor(tables ...string) *ViewModel {
	keys := make([]string, 0, len(p.Views))
	for k := range p.Views {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var best *ViewModel
	for _, k := range keys {
		vm := p.Views[k]
		ok := true
		for _, t := range tables {
			found := false
			for _, vt := range vm.Tables {
				if vt == t {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok && (best == nil || len(vm.Tables) < len(best.Tables)) {
			best = vm
		}
	}
	return best
}
