package pgm

import (
	"math/rand"
	"testing"

	"sam/internal/datagen"
	"sam/internal/engine"
	"sam/internal/metrics"
	"sam/internal/relation"
	"sam/internal/workload"
)

func TestChordalizeSquare(t *testing.T) {
	// 4-cycle 0-1-2-3-0 is not chordal; min-fill must add one diagonal and
	// produce two triangles.
	g := newGraph(4)
	g.addEdge(0, 1)
	g.addEdge(1, 2)
	g.addEdge(2, 3)
	g.addEdge(3, 0)
	chordal, order := chordalize(g)
	if len(order) != 4 {
		t.Fatalf("order %v", order)
	}
	cliques := maximalCliques(chordal, order)
	if len(cliques) != 2 {
		t.Fatalf("cliques %v", cliques)
	}
	for _, c := range cliques {
		if len(c) != 3 {
			t.Fatalf("expected triangles, got %v", cliques)
		}
	}
}

func TestChordalizeTriangleIsUnchanged(t *testing.T) {
	g := newGraph(3)
	g.addEdge(0, 1)
	g.addEdge(1, 2)
	g.addEdge(0, 2)
	chordal, order := chordalize(g)
	cliques := maximalCliques(chordal, order)
	if len(cliques) != 1 || len(cliques[0]) != 3 {
		t.Fatalf("cliques %v", cliques)
	}
}

func TestMaximalCliquesIsolatedVertices(t *testing.T) {
	g := newGraph(3) // no edges
	chordal, order := chordalize(g)
	cliques := maximalCliques(chordal, order)
	if len(cliques) != 3 {
		t.Fatalf("cliques %v", cliques)
	}
}

func TestJunctionTreeSeparators(t *testing.T) {
	cliques := [][]int{{0, 1, 2}, {1, 2, 3}, {3, 4}}
	edges := junctionTree(cliques)
	if len(edges) != 2 {
		t.Fatalf("edges %v", edges)
	}
	var sepSizes []int
	for _, e := range edges {
		sepSizes = append(sepSizes, len(e.sep))
	}
	// One separator {1,2}, one {3}.
	if !(sepSizes[0]+sepSizes[1] == 3) {
		t.Fatalf("separator sizes %v", sepSizes)
	}
}

func TestSubsetAndIntersect(t *testing.T) {
	if !subsetOf([]int{1, 3}, []int{1, 2, 3}) || subsetOf([]int{1, 4}, []int{1, 2, 3}) {
		t.Fatal("subsetOf broken")
	}
	got := intersect([]int{1, 2, 4, 6}, []int{2, 3, 4, 7})
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("intersect %v", got)
	}
}

func singleTableFixture(rng *rand.Rand, rows int) *relation.Schema {
	c1 := relation.NewColumn("x", relation.Categorical, 6)
	c2 := relation.NewColumn("y", relation.Numeric, 10)
	c3 := relation.NewColumn("z", relation.Categorical, 4)
	for i := 0; i < rows; i++ {
		v := int32(rng.Intn(6))
		c1.Append(v)
		c2.Append(int32(rng.Intn(10)))
		if rng.Float64() < 0.7 {
			c3.Append(v % 4) // z correlates with x
		} else {
			c3.Append(int32(rng.Intn(4)))
		}
	}
	return relation.MustSchema(relation.NewTable("t", c1, c2, c3))
}

func TestPGMSingleTableSatisfiesConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := singleTableFixture(rng, 2000)
	queries := workload.GenerateSingleRelation(rng, s.Tables[0], 10, workload.DefaultSingleRelationOptions())
	wl := &workload.Workload{Queries: engine.Label(s, queries)}
	sizes := map[string]int{"t": 2000}
	p, err := Train(s, wl, sizes, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := p.Generate(2)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Tables[0].NumRows() != 2000 {
		t.Fatalf("generated %d rows", gen.Tables[0].NumRows())
	}
	var qerrs []float64
	for i := range wl.Queries {
		got := engine.Card(gen, &wl.Queries[i].Query)
		qerrs = append(qerrs, metrics.QError(float64(got), float64(wl.Queries[i].Card)))
	}
	sum := metrics.Summarize(qerrs)
	// PGM derives a near-exact solution on tiny workloads (paper Table 2).
	if sum.Median > 2.0 {
		t.Fatalf("PGM median Q-Error %.2f too high on tiny workload (%v)", sum.Median, sum)
	}
}

func TestPGMMultiRelationGenerates(t *testing.T) {
	orig := datagen.IMDB(3, 200)
	rng := rand.New(rand.NewSource(5))
	queries := workload.GenerateMultiRelation(rng, orig, 30, workload.DefaultMultiRelationOptions())
	wl := &workload.Workload{Queries: engine.Label(orig, queries)}
	sizes := map[string]int{}
	for _, tab := range orig.Tables {
		sizes[tab.Name] = tab.NumRows()
	}
	populations := map[string]float64{}
	for _, ts := range wl.TableSets() {
		if len(ts) > 1 {
			q := workload.Query{Tables: ts}
			populations[viewKey(ts)] = float64(engine.Card(orig, &q))
		}
	}
	p, err := Train(orig, wl, sizes, populations, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := p.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tab := range orig.Tables {
		g := gen.Table(tab.Name)
		if g.NumRows() != tab.NumRows() {
			t.Fatalf("table %s: %d rows want %d", tab.Name, g.NumRows(), tab.NumRows())
		}
		if tab.Parent != "" {
			for _, fk := range g.FK {
				if fk < 0 || fk >= int64(gen.Table(tab.Parent).NumRows()) {
					t.Fatalf("dangling FK in %s", tab.Name)
				}
			}
		}
	}
}

func TestPGMMissingJoinPopulationErrors(t *testing.T) {
	orig := datagen.IMDB(4, 50)
	wl := &workload.Workload{Queries: []workload.CardQuery{{
		Query: workload.Query{
			Tables: []string{"title", "cast_info"},
			Preds: []workload.Predicate{
				{Table: "title", Column: "kind_id", Op: workload.EQ, Code: 1},
			},
		},
		Card: 5,
	}}}
	sizes := map[string]int{}
	for _, tab := range orig.Tables {
		sizes[tab.Name] = tab.NumRows()
	}
	if _, err := Train(orig, wl, sizes, nil, DefaultConfig()); err == nil {
		t.Fatal("missing join population accepted")
	}
}

func TestPGMEmptyWorkloadErrors(t *testing.T) {
	orig := datagen.Census(1, 100)
	if _, err := Train(orig, &workload.Workload{}, map[string]int{"census": 100}, nil, DefaultConfig()); err == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestPGMCliqueCellCap(t *testing.T) {
	// Force a clique whose joint exceeds MaxCells.
	rng := rand.New(rand.NewSource(9))
	s := datagen.DMV(2, 500)
	queries := workload.GenerateSingleRelation(rng, s.Tables[0], 200, workload.DefaultSingleRelationOptions())
	wl := &workload.Workload{Queries: engine.Label(s, queries)}
	cfg := DefaultConfig()
	cfg.MaxCells = 1000
	_, err := Train(s, wl, map[string]int{"dmv": 500}, nil, cfg)
	if err == nil {
		t.Fatal("expected cell-cap error on a dense workload")
	}
}

func TestViewKeyCanonical(t *testing.T) {
	if viewKey([]string{"b", "a"}) != viewKey([]string{"a", "b"}) {
		t.Fatal("viewKey not canonical")
	}
}

func TestViewSamplerRespectsConditioning(t *testing.T) {
	// Build a tiny 2-attr view with a known joint and verify conditional
	// sampling honours fixed bins.
	rng := rand.New(rand.NewSource(11))
	s := singleTableFixture(rng, 500)
	queries := workload.GenerateSingleRelation(rng, s.Tables[0], 8, workload.DefaultSingleRelationOptions())
	wl := &workload.Workload{Queries: engine.Label(s, queries)}
	p, err := Train(s, wl, map[string]int{"t": 500}, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	vm := p.exactView("t")
	if vm == nil {
		t.Skip("no single-table view in this workload")
	}
	vs := newViewSampler(vm)
	for trial := 0; trial < 50; trial++ {
		fixedAttr := rng.Intn(len(vm.Attrs))
		fixedBin := rng.Intn(vm.Attrs[fixedAttr].Disc.Bins())
		got := vs.sample(rng, map[int]int{fixedAttr: fixedBin})
		if got[fixedAttr] != fixedBin {
			t.Fatalf("conditioning violated: got %d want %d", got[fixedAttr], fixedBin)
		}
		for ai := range vm.Attrs {
			if _, ok := got[ai]; !ok {
				t.Fatalf("attr %d unassigned", ai)
			}
		}
	}
}

func TestPGMGenerationDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := singleTableFixture(rng, 300)
	queries := workload.GenerateSingleRelation(rng, s.Tables[0], 6, workload.DefaultSingleRelationOptions())
	wl := &workload.Workload{Queries: engine.Label(s, queries)}
	p, err := Train(s, wl, map[string]int{"t": 300}, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range a.Tables[0].Cols {
		for i := range a.Tables[0].Cols[ci].Data {
			if a.Tables[0].Cols[ci].Data[i] != b.Tables[0].Cols[ci].Data[i] {
				t.Fatal("same-seed PGM generation differs")
			}
		}
	}
	c, err := p.Generate(6)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for ci := range a.Tables[0].Cols {
		for i := range a.Tables[0].Cols[ci].Data {
			if a.Tables[0].Cols[ci].Data[i] != c.Tables[0].Cols[ci].Data[i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical PGM output")
	}
}

func TestPGMSolverImprovesResidual(t *testing.T) {
	// The Kaczmarz solution must satisfy the cardinality constraints far
	// better than the uniform initialization.
	rng := rand.New(rand.NewSource(17))
	s := singleTableFixture(rng, 1000)
	queries := workload.GenerateSingleRelation(rng, s.Tables[0], 8, workload.DefaultSingleRelationOptions())
	wl := &workload.Workload{Queries: engine.Label(s, queries)}
	p, err := Train(s, wl, map[string]int{"t": 1000}, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := p.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := range wl.Queries {
		got := engine.Card(gen, &wl.Queries[i].Query)
		q := metrics.QError(float64(got), float64(wl.Queries[i].Card))
		if q > worst {
			worst = q
		}
	}
	if worst > 8 {
		t.Fatalf("worst constraint Q-Error %.2f — solver not converging", worst)
	}
}
