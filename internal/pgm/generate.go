package pgm

import (
	"fmt"
	"math/rand"
	"sort"

	"sam/internal/relation"
)

// viewSampler draws attribute-bin assignments from one ViewModel with
// memoized conditional distributions.
type viewSampler struct {
	vm *ViewModel
	// cache maps (clique, conditioning signature) → cumulative weights over
	// cells.
	cache map[string][]float64
	// bfs order of cliques from the junction tree (roots first).
	order []int
}

func newViewSampler(vm *ViewModel) *viewSampler {
	n := len(vm.Cliques)
	adj := make(map[int][]int)
	for _, e := range vm.Tree {
		adj[e.a] = append(adj[e.a], e.b)
		adj[e.b] = append(adj[e.b], e.a)
	}
	visited := make([]bool, n)
	var order []int
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		queue := []int{start}
		visited[start] = true
		for len(queue) > 0 {
			c := queue[0]
			queue = queue[1:]
			order = append(order, c)
			next := append([]int(nil), adj[c]...)
			sort.Ints(next)
			for _, nb := range next {
				if !visited[nb] {
					visited[nb] = true
					queue = append(queue, nb)
				}
			}
		}
	}
	return &viewSampler{vm: vm, cache: make(map[string][]float64), order: order}
}

// sample assigns a bin to every view attribute, honoring any fixed
// conditioning bins (attr index → bin; -1 or absent = free).
func (s *viewSampler) sample(rng *rand.Rand, fixed map[int]int) map[int]int {
	assigned := make(map[int]int, len(s.vm.Attrs))
	for k, v := range fixed {
		assigned[k] = v
	}
	for _, ci := range s.order {
		s.sampleClique(rng, ci, assigned)
	}
	// Attributes in no clique (isolated) are covered: every attr is in its
	// elimination clique, so all are assigned.
	return assigned
}

// sampleClique draws the unassigned attrs of clique ci conditioned on the
// already-assigned ones.
func (s *viewSampler) sampleClique(rng *rand.Rand, ci int, assigned map[int]int) {
	cl := s.vm.Cliques[ci]
	// Conditioning signature.
	sig := make([]byte, 0, len(cl)*3+2)
	sig = append(sig, byte(ci), byte(ci>>8))
	anyFree := false
	for _, ai := range cl {
		if b, ok := assigned[ai]; ok {
			sig = append(sig, 1, byte(b), byte(b>>8))
		} else {
			sig = append(sig, 0, 0, 0)
			anyFree = true
		}
	}
	if !anyFree {
		return
	}
	key := string(sig)
	cum, ok := s.cache[key]
	if !ok {
		joint := s.vm.Joint[ci]
		cum = make([]float64, len(joint))
		bins := make([]int, len(cl))
		var run float64
		for cell, w := range joint {
			s.vm.cellBins(ci, cell, bins)
			match := true
			for pos, ai := range cl {
				if b, okA := assigned[ai]; okA && bins[pos] != b {
					match = false
					break
				}
			}
			if match {
				run += w
			}
			cum[cell] = run
		}
		if run == 0 {
			// Fall back to uniform over matching cells.
			run = 0
			for cell := range joint {
				s.vm.cellBins(ci, cell, bins)
				match := true
				for pos, ai := range cl {
					if b, okA := assigned[ai]; okA && bins[pos] != b {
						match = false
						break
					}
				}
				if match {
					run++
				}
				cum[cell] = run
			}
		}
		s.cache[key] = cum
	}
	total := cum[len(cum)-1]
	bins := make([]int, len(cl))
	var cell int
	if total <= 0 {
		cell = rng.Intn(len(cum))
	} else {
		u := rng.Float64() * total
		cell = sort.SearchFloat64s(cum, u)
		if cell >= len(cum) {
			cell = len(cum) - 1
		}
	}
	s.vm.cellBins(ci, cell, bins)
	for pos, ai := range cl {
		if _, ok := assigned[ai]; !ok {
			assigned[ai] = bins[pos]
		}
	}
}

// Generate materializes a synthetic database: each table's content is
// sampled from its view model (uniform for unfiltered columns), and
// foreign keys are derived from pairwise views as in the paper's Figure 4.
func (p *PGM) Generate(seed int64) (*relation.Schema, error) {
	rng := rand.New(rand.NewSource(seed))
	samplers := make(map[string]*viewSampler)
	sampler := func(vm *ViewModel) *viewSampler {
		key := viewKey(vm.Tables)
		if s, ok := samplers[key]; ok {
			return s
		}
		s := newViewSampler(vm)
		samplers[key] = s
		return s
	}

	tables := make(map[string]*relation.Table, len(p.Schema.Tables))
	// parentBinIndex[table] maps the generated parent rows' attr-bin
	// signature (under a given view model) to row pks; built lazily per
	// (child, parent) pair below.
	for _, t := range p.Schema.Tables {
		cols := make([]*relation.Column, len(t.Cols))
		for i, c := range t.Cols {
			nc := relation.NewColumn(c.Name, c.Kind, c.NumValues)
			if c.Vals != nil {
				nc = nc.WithVals(c.Vals)
			}
			cols[i] = nc
		}
		nt := relation.NewTable(t.Name, cols...)
		nt.Parent = t.Parent
		tables[t.Name] = nt

		vm := p.exactView(t.Name)
		if vm == nil {
			vm = p.viewFor(t.Name)
		}
		var vs *viewSampler
		if vm != nil {
			vs = sampler(vm)
		}
		size := p.Sizes[t.Name]
		for r := 0; r < size; r++ {
			var assigned map[int]int
			if vs != nil {
				assigned = vs.sample(rng, nil)
			}
			for ci, c := range t.Cols {
				code := int32(-1)
				if vm != nil {
					if ai, ok := vm.attrIdx[t.Name+"."+c.Name]; ok {
						code = vm.Attrs[ai].Disc.SampleIn(rng, assigned[ai])
					}
				}
				if code < 0 {
					code = int32(rng.Intn(c.NumValues))
				}
				cols[ci].Append(code)
			}
		}
	}

	// Foreign keys from pairwise views.
	for _, t := range p.Schema.Tables {
		if t.Parent == "" {
			continue
		}
		child := tables[t.Name]
		parent := tables[t.Parent]
		n := child.NumRows()
		child.FK = make([]int64, n)
		vm := p.viewFor(t.Name, t.Parent)
		if vm == nil {
			// No join view observed: uniform foreign keys.
			for i := range child.FK {
				child.FK[i] = int64(rng.Intn(parent.NumRows()))
			}
			continue
		}
		vs := sampler(vm)
		// Index parent rows by their view-attr bins.
		parentAttrs := make([]int, 0, len(vm.Attrs))
		childAttrs := make([]int, 0, len(vm.Attrs))
		for ai := range vm.Attrs {
			switch vm.Attrs[ai].Table {
			case t.Parent:
				parentAttrs = append(parentAttrs, ai)
			case t.Name:
				childAttrs = append(childAttrs, ai)
			}
		}
		index := make(map[string][]int64)
		sigBuf := make([]byte, 0, len(parentAttrs)*2)
		for r := 0; r < parent.NumRows(); r++ {
			sigBuf = sigBuf[:0]
			for _, ai := range parentAttrs {
				a := vm.Attrs[ai]
				b := a.Disc.BinOf(parent.Col(a.Column).Data[r])
				sigBuf = append(sigBuf, byte(b), byte(b>>8))
			}
			index[string(sigBuf)] = append(index[string(sigBuf)], int64(r))
		}
		for r := 0; r < n; r++ {
			fixed := make(map[int]int, len(childAttrs))
			for _, ai := range childAttrs {
				a := vm.Attrs[ai]
				fixed[ai] = a.Disc.BinOf(child.Col(a.Column).Data[r])
			}
			assigned := vs.sample(rng, fixed)
			sigBuf = sigBuf[:0]
			for _, ai := range parentAttrs {
				b := assigned[ai]
				sigBuf = append(sigBuf, byte(b), byte(b>>8))
			}
			if cands := index[string(sigBuf)]; len(cands) > 0 {
				child.FK[r] = cands[rng.Intn(len(cands))]
			} else {
				child.FK[r] = int64(rng.Intn(parent.NumRows()))
			}
		}
	}

	ordered := make([]*relation.Table, 0, len(tables))
	for _, t := range p.Schema.Tables {
		ordered = append(ordered, tables[t.Name])
	}
	out, err := relation.NewSchema(ordered...)
	if err != nil {
		return nil, fmt.Errorf("pgm: generated schema invalid: %w", err)
	}
	return out, nil
}

// exactView returns the view trained on exactly {table}, if any.
func (p *PGM) exactView(table string) *ViewModel {
	return p.Views[viewKey([]string{table})]
}
