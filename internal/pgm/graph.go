// Package pgm implements the baseline the SAM paper compares against:
// database generation with Probabilistic Graphical Models (Arasu, Kaushik
// & Li, SIGMOD'11, chordal-graph method). Attributes co-filtered by a
// query become edges of a Markov network; the network is chordalized
// (min-fill), its maximal cliques carry joint distributions over
// intervalized domains, and a nonnegative linear system ties clique cells
// to the observed cardinalities. Multi-relation workloads build one model
// per view (distinct joined-table set), and foreign keys are derived from
// pairwise views — the design whose inconsistencies across views the paper
// analyzes (§2.3).
package pgm

import "sort"

// undirected graph over attribute indices.
type graph struct {
	n   int
	adj []map[int]bool
}

func newGraph(n int) *graph {
	g := &graph{n: n, adj: make([]map[int]bool, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]bool)
	}
	return g
}

func (g *graph) addEdge(a, b int) {
	if a == b {
		return
	}
	g.adj[a][b] = true
	g.adj[b][a] = true
}

func (g *graph) clone() *graph {
	c := newGraph(g.n)
	for i, nbrs := range g.adj {
		for j := range nbrs {
			c.adj[i][j] = true
		}
	}
	return c
}

// fillIn counts the missing edges among v's neighbours in work.
func fillIn(work *graph, v int, alive []bool) int {
	var nbrs []int
	for u := range work.adj[v] {
		if alive[u] {
			nbrs = append(nbrs, u)
		}
	}
	cnt := 0
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			if !work.adj[nbrs[i]][nbrs[j]] {
				cnt++
			}
		}
	}
	return cnt
}

// chordalize runs the min-fill heuristic, returning the elimination order
// and mutating a copy of g into a chordal supergraph (also returned).
func chordalize(g *graph) (*graph, []int) {
	work := g.clone()
	alive := make([]bool, g.n)
	for i := range alive {
		alive[i] = true
	}
	order := make([]int, 0, g.n)
	var nbrs []int
	for len(order) < g.n {
		best, bestFill := -1, 1<<30
		for v := 0; v < g.n; v++ {
			if !alive[v] {
				continue
			}
			f := fillIn(work, v, alive)
			if f < bestFill {
				best, bestFill = v, f
			}
		}
		// Connect best's alive neighbours pairwise (fill edges).
		nbrs = nbrs[:0]
		for u := range work.adj[best] {
			if alive[u] {
				nbrs = append(nbrs, u)
			}
		}
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				work.addEdge(nbrs[i], nbrs[j])
			}
		}
		alive[best] = false
		order = append(order, best)
	}
	return work, order
}

// maximalCliques extracts the maximal cliques of a chordal graph from its
// perfect elimination ordering: clique(v) = {v} ∪ later-neighbours(v),
// keeping only maximal sets. Cliques and their members are sorted for
// determinism.
func maximalCliques(chordal *graph, order []int) [][]int {
	pos := make([]int, chordal.n)
	for i, v := range order {
		pos[v] = i
	}
	var cliques [][]int
	for i, v := range order {
		c := make([]int, 0, 1+len(chordal.adj[v]))
		c = append(c, v)
		for u := range chordal.adj[v] {
			if pos[u] > i {
				c = append(c, u)
			}
		}
		sort.Ints(c)
		cliques = append(cliques, c)
	}
	// Drop cliques contained in another.
	var maximal [][]int
	for i, ci := range cliques {
		contained := false
		for j, cj := range cliques {
			if i == j || len(ci) > len(cj) {
				continue
			}
			if len(ci) == len(cj) && i > j && equalInts(ci, cj) {
				contained = true
				break
			}
			if len(ci) < len(cj) && subsetOf(ci, cj) {
				contained = true
				break
			}
		}
		if !contained {
			maximal = append(maximal, ci)
		}
	}
	sort.Slice(maximal, func(a, b int) bool { return lessInts(maximal[a], maximal[b]) })
	return maximal
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func subsetOf(a, b []int) bool { // both sorted
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j == len(b) || b[j] != v {
			return false
		}
	}
	return true
}

func lessInts(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// intersect returns the sorted intersection of two sorted int slices.
func intersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// treeEdge is a junction-tree edge between clique indices with their
// separator attributes.
type treeEdge struct {
	a, b int
	sep  []int
}

// junctionTree builds a maximum-weight spanning tree over the cliques,
// weighted by separator size (Prim's algorithm; cliques may form a forest
// when the Markov net is disconnected — only positive-weight edges join).
func junctionTree(cliques [][]int) []treeEdge {
	n := len(cliques)
	if n <= 1 {
		return nil
	}
	inTree := make([]bool, n)
	inTree[0] = true
	var edges []treeEdge
	for added := 1; added < n; added++ {
		bestW, bestA, bestB := -1, -1, -1
		for a := 0; a < n; a++ {
			if !inTree[a] {
				continue
			}
			for b := 0; b < n; b++ {
				if inTree[b] {
					continue
				}
				w := len(intersect(cliques[a], cliques[b]))
				if w > bestW {
					bestW, bestA, bestB = w, a, b
				}
			}
		}
		inTree[bestB] = true
		if bestW > 0 {
			edges = append(edges, treeEdge{a: bestA, b: bestB, sep: intersect(cliques[bestA], cliques[bestB])})
		}
	}
	return edges
}
