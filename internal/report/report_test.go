package report

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sam/internal/experiments"
	"sam/internal/obs"
)

// writeTrace produces a small JSONL trace whose root carries runID.
func writeTrace(t *testing.T, dir, name, runID string) string {
	t.Helper()
	tr := obs.NewTrace("test-run")
	if runID != "" {
		tr.Root().SetAttr("run_id", runID)
	}
	sample := tr.Root().Child("sample")
	sh := sample.Child("shard")
	sh.End()
	sample.End()
	merge := tr.Root().Child("merge")
	merge.End()
	tr.Root().End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeRunLog produces a JSONL run log with stream_pass and eval_query
// entries for runID.
func writeRunLog(t *testing.T, dir, runID string) string {
	t.Helper()
	path := filepath.Join(dir, "run.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	l := obs.NewRunLog(f, runID)
	h := obs.RunLogHooks(l)
	h.StreamPass(obs.StreamPass{Pass: "shard", Table: "", Shard: 0, RecordsOut: 100, Wall: time.Second})
	h.StreamPass(obs.StreamPass{Pass: "weight", RecordsIn: 100, RecordsOut: 100, Wall: time.Second})
	h.StreamPass(obs.StreamPass{Pass: "A", Table: "t", RecordsIn: 100, RecordsOut: 40, Runs: 2, BytesWritten: 4096})
	h.StreamPass(obs.StreamPass{Pass: "B", Table: "t", RecordsIn: 40, RecordsOut: 20, BytesRead: 4096})
	h.StreamPass(obs.StreamPass{Pass: "C", Table: "t", RecordsIn: 20, RecordsOut: 500})
	h.EvalQuery(obs.EvalQuery{Card: 10, Truth: 20, QError: 2, Table: "t", Preds: 1})
	h.EvalQuery(obs.EvalQuery{Card: 30, Truth: 10, QError: 3, Table: "t", Preds: 4})
	h.EvalQuery(obs.EvalQuery{Card: 5, Truth: 5, QError: 1, Table: "u", Preds: 0})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeMetrics renders a stamped registry as either a JSON snapshot or
// Prometheus text.
func writeMetrics(t *testing.T, dir, name, runID string, asJSON bool) string {
	t.Helper()
	r := obs.NewRegistry()
	obs.StampRunInfo(r, runID, obs.BuildMeta())
	r.Counter("gen_rows_total").Add(100)
	h := r.Histogram("eval_qerror", []float64{1, 2, 4})
	h.Observe(1)
	h.Observe(3)

	var buf bytes.Buffer
	if asJSON {
		enc := json.NewEncoder(&buf)
		if err := enc.Encode(r.Snapshot()); err != nil {
			t.Fatal(err)
		}
	} else if err := obs.WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeScale(t *testing.T, dir, runID string) string {
	t.Helper()
	rep := experiments.ScaleBenchReport{
		Description:   "synthetic",
		RunID:         runID,
		Rows:          1000,
		Shards:        2,
		Workers:       2,
		Batch:         64,
		Partitions:    4,
		RowsPerSec:    5000,
		SampleWallMs:  120,
		MergeWallMs:   80,
		WeightWallMs:  10,
		PassAWallMs:   30,
		PassBWallMs:   25,
		PassCWallMs:   15,
		TotalWallMs:   200,
		PeakHeapBytes: 1 << 20,
		ShardBytes:    1 << 16,
	}
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_scale.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBuildJoinsMatchingArtifacts fuses a trace, run log, metrics
// snapshot, and scale report all stamped with one run ID and checks the
// join key, sections, and both renderers.
func TestBuildJoinsMatchingArtifacts(t *testing.T) {
	dir := t.TempDir()
	id := obs.NewRunID()
	rep, err := Build(Inputs{
		TracePath:   writeTrace(t, dir, "run.jsonl", id),
		RunLogPath:  writeRunLog(t, dir, id),
		MetricsPath: writeMetrics(t, dir, "metrics.json", id, true),
		ScalePath:   writeScale(t, dir, id),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RunID != id {
		t.Fatalf("joined run ID %q, want %q", rep.RunID, id)
	}
	if rep.Warning != "" {
		t.Fatalf("unexpected warning %q", rep.Warning)
	}
	titles := make([]string, len(rep.Sections))
	for i, s := range rep.Sections {
		titles[i] = s.Title
	}
	joined := strings.Join(titles, ",")
	for _, want := range []string{"Inputs", "Phase trace", "Q-Error", "Streaming passes", "Scale benchmark", "Metrics"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("sections %v missing %q", titles, want)
		}
	}

	var md bytes.Buffer
	if err := rep.Write(&md, "markdown"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# SAM run report", id, "| pass |", "sample", "rows/sec end-to-end"} {
		if !strings.Contains(md.String(), want) {
			t.Fatalf("markdown missing %q:\n%s", want, md.String())
		}
	}

	var html bytes.Buffer
	if err := rep.Write(&html, "html"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<!DOCTYPE html>", "<table>", id} {
		if !strings.Contains(html.String(), want) {
			t.Fatalf("html missing %q", want)
		}
	}
	if err := rep.Write(&md, "yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestBuildRunIDMismatch pins the join gate: differing IDs are an error
// naming both claimants, and -allow-mismatch downgrades it to a warning.
func TestBuildRunIDMismatch(t *testing.T) {
	dir := t.TempDir()
	in := Inputs{
		TracePath:  writeTrace(t, dir, "run.jsonl", "aaaa000000000000"),
		RunLogPath: writeRunLog(t, dir, "bbbb000000000000"),
	}
	_, err := Build(in)
	if err == nil {
		t.Fatal("mismatched run IDs accepted")
	}
	for _, want := range []string{"aaaa000000000000", "bbbb000000000000", "-allow-mismatch"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("mismatch error %q missing %q", err, want)
		}
	}

	in.AllowMismatch = true
	rep, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Warning == "" {
		t.Fatal("allow-mismatch produced no warning")
	}
	if rep.RunID != "aaaa000000000000" {
		t.Fatalf("allow-mismatch run ID %q", rep.RunID)
	}
	var md bytes.Buffer
	if err := rep.Write(&md, "md"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "**Warning:**") {
		t.Fatal("warning not rendered in markdown")
	}
}

// TestBuildBaselineExemptFromJoin diffs against a baseline trace from a
// different run: legal by design, and the diff section must appear.
func TestBuildBaselineExemptFromJoin(t *testing.T) {
	dir := t.TempDir()
	id := obs.NewRunID()
	rep, err := Build(Inputs{
		TracePath:    writeTrace(t, dir, "run.jsonl", id),
		BaselinePath: writeTrace(t, dir, "base.jsonl", obs.NewRunID()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RunID != id {
		t.Fatalf("run ID %q, want %q", rep.RunID, id)
	}
	found := false
	for _, s := range rep.Sections {
		if s.Title == "Trace diff vs baseline" {
			found = true
		}
	}
	if !found {
		t.Fatal("no diff section with a baseline input")
	}
}

// TestBuildPrometheusMetrics exercises the text-scrape input path: run ID
// recovery via the parsed families and the qerror fallback rows.
func TestBuildPrometheusMetrics(t *testing.T) {
	dir := t.TempDir()
	id := obs.NewRunID()
	rep, err := Build(Inputs{MetricsPath: writeMetrics(t, dir, "metrics.prom", id, false)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RunID != id {
		t.Fatalf("run ID from scrape %q, want %q", rep.RunID, id)
	}
	var md bytes.Buffer
	if err := rep.Write(&md, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "eval_qerror") {
		t.Fatalf("scrape-driven report missing the qerror fallback:\n%s", md.String())
	}
}

// TestBuildInputValidation covers the fail-fast paths.
func TestBuildInputValidation(t *testing.T) {
	if _, err := Build(Inputs{}); err == nil {
		t.Fatal("empty inputs accepted")
	}
	if _, err := Build(Inputs{BaselinePath: "x.jsonl"}); err == nil {
		t.Fatal("baseline without trace accepted")
	}
	if _, err := Build(Inputs{TracePath: "/definitely/not/there.jsonl"}); err == nil {
		t.Fatal("missing trace file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.log")
	if err := os.WriteFile(bad, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(Inputs{RunLogPath: bad}); err == nil {
		t.Fatal("malformed run log accepted")
	}
}

// TestMarkdownTableEscaping keeps pipe characters in cell data from
// breaking the table grammar.
func TestMarkdownTableEscaping(t *testing.T) {
	rep := &Report{
		Title: "t",
		Sections: []Section{{
			Title: "s",
			Table: &Table{Header: []string{"k"}, Rows: [][]string{{"a|b"}}},
		}},
	}
	var md bytes.Buffer
	if err := rep.Write(&md, "markdown"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), `a\|b`) {
		t.Fatalf("pipe not escaped:\n%s", md.String())
	}
}

// TestHTMLEscaping keeps markup in cell data inert.
func TestHTMLEscaping(t *testing.T) {
	rep := &Report{
		Title: "t",
		Sections: []Section{{
			Title: "s",
			Text: []string{
				"uses `code` spans",
				"**Warning:** inputs disagree <script>alert(1)</script>",
			},
			Table: &Table{Header: []string{"k"}, Rows: [][]string{{"<b>bold</b>"}}},
		}},
	}
	var html bytes.Buffer
	if err := rep.Write(&html, "html"); err != nil {
		t.Fatal(err)
	}
	out := html.String()
	if strings.Contains(out, "<script>") || strings.Contains(out, "<b>bold</b>") {
		t.Fatalf("markup not escaped:\n%s", out)
	}
	if !strings.Contains(out, "<code>code</code>") {
		t.Fatalf("backtick span not rendered as <code>:\n%s", out)
	}
	if !strings.Contains(out, `class="warn"`) {
		t.Fatalf("warning paragraph not styled:\n%s", out)
	}
}
