package report

import (
	"fmt"
	"html"
	"io"
	"strings"
)

// WriteMarkdown renders the report as GitHub-flavored Markdown: one H1,
// one H2 per section, pipe tables, and fenced blocks for preformatted
// text.
func (r *Report) WriteMarkdown(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("# " + r.Title + "\n\n")
	for _, sec := range r.Sections {
		sb.WriteString("## " + sec.Title + "\n\n")
		for _, p := range sec.Text {
			sb.WriteString(p + "\n\n")
		}
		if sec.Table != nil {
			writeMarkdownTable(&sb, sec.Table)
			sb.WriteByte('\n')
		}
		if sec.Pre != "" {
			sb.WriteString("```\n")
			sb.WriteString(sec.Pre)
			if !strings.HasSuffix(sec.Pre, "\n") {
				sb.WriteByte('\n')
			}
			sb.WriteString("```\n\n")
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func writeMarkdownTable(sb *strings.Builder, t *Table) {
	escape := func(cell string) string {
		return strings.ReplaceAll(strings.ReplaceAll(cell, "|", `\|`), "\n", " ")
	}
	sb.WriteString("| ")
	for i, h := range t.Header {
		if i > 0 {
			sb.WriteString(" | ")
		}
		sb.WriteString(escape(h))
	}
	sb.WriteString(" |\n|")
	for range t.Header {
		sb.WriteString("---|")
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteString("| ")
		for i, cell := range row {
			if i > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(escape(cell))
		}
		sb.WriteString(" |\n")
	}
}

// WriteHTML renders the report as a self-contained HTML document (inline
// style, no external assets) with the same sections as the Markdown view.
func (r *Report) WriteHTML(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>` + html.EscapeString(r.Title) + `</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; padding: 0 1rem; color: #1a1a1a; }
h1 { border-bottom: 2px solid #ddd; padding-bottom: .3rem; }
h2 { border-bottom: 1px solid #eee; padding-bottom: .2rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: .5rem 0; }
th, td { border: 1px solid #ccc; padding: .25rem .6rem; text-align: left; font-size: .9rem; }
th { background: #f5f5f5; }
pre { background: #f8f8f8; border: 1px solid #eee; padding: .75rem; overflow-x: auto; font-size: .8rem; }
code { background: #f0f0f0; padding: 0 .2rem; }
.warn { color: #a40000; font-weight: bold; }
</style></head><body>
`)
	sb.WriteString("<h1>" + html.EscapeString(r.Title) + "</h1>\n")
	for _, sec := range r.Sections {
		sb.WriteString("<h2>" + html.EscapeString(sec.Title) + "</h2>\n")
		for _, p := range sec.Text {
			cls := ""
			if strings.HasPrefix(p, "**Warning:**") {
				cls = ` class="warn"`
				p = strings.TrimPrefix(p, "**Warning:** ")
			}
			sb.WriteString("<p" + cls + ">" + inlineHTML(p) + "</p>\n")
		}
		if sec.Table != nil {
			sb.WriteString("<table><tr>")
			for _, h := range sec.Table.Header {
				sb.WriteString("<th>" + html.EscapeString(h) + "</th>")
			}
			sb.WriteString("</tr>\n")
			for _, row := range sec.Table.Rows {
				sb.WriteString("<tr>")
				for _, cell := range row {
					sb.WriteString("<td>" + html.EscapeString(cell) + "</td>")
				}
				sb.WriteString("</tr>\n")
			}
			sb.WriteString("</table>\n")
		}
		if sec.Pre != "" {
			sb.WriteString("<pre>" + html.EscapeString(sec.Pre) + "</pre>\n")
		}
	}
	sb.WriteString("</body></html>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// inlineHTML escapes a prose paragraph, honoring the one piece of inline
// markup the sections use: `code` spans.
func inlineHTML(p string) string {
	parts := strings.Split(p, "`")
	var sb strings.Builder
	for i, part := range parts {
		if i%2 == 1 && i < len(parts)-(len(parts)%2) {
			sb.WriteString("<code>" + html.EscapeString(part) + "</code>")
		} else {
			sb.WriteString(html.EscapeString(part))
		}
	}
	return sb.String()
}

// Write renders the report in the named format ("markdown" or "html").
func (r *Report) Write(w io.Writer, format string) error {
	switch format {
	case "", "markdown", "md":
		return r.WriteMarkdown(w)
	case "html":
		return r.WriteHTML(w)
	default:
		return fmt.Errorf("report: unknown format %q (want markdown or html)", format)
	}
}
