// Package report fuses the artifacts one SAM run leaves behind — a phase
// trace, a metrics snapshot or Prometheus scrape, a structured run log,
// and the benchmark reports — into a single self-contained document.
// Inputs are joined by the run ID each artifact was stamped with
// (obs.NewRunID; see cmd/samgen and cmd/sambench), so a report cannot
// silently mix artifacts from different runs.
package report

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"sam/internal/experiments"
	"sam/internal/obs"
)

// Inputs names the artifact files to fuse. Every path is optional, but at
// least one must be set.
type Inputs struct {
	TracePath    string // JSONL span trace (samgen/sambench -trace)
	BaselinePath string // second trace to diff the first against
	MetricsPath  string // /metrics.json snapshot OR Prometheus text scrape
	RunLogPath   string // JSONL run log (-runlog)
	ScalePath    string // BENCH_scale.json (sambench -scalebench)
	TensorPath   string // BENCH_tensor.json (sambench -tensorbench)
	// Top bounds the hot-span and diff listings (0 = 10).
	Top int
	// AllowMismatch downgrades a run-ID join failure to a warning in the
	// report instead of an error.
	AllowMismatch bool
}

// Source records where one section's data came from and which run it
// claims. Artifacts that carry no run ID (tensor benchmarks, baseline
// traces) report it empty.
type Source struct {
	Kind  string
	Path  string
	RunID string
}

// Table is one rendered table: a header row plus data rows, all strings.
type Table struct {
	Header []string
	Rows   [][]string
}

// Section is one report section: a title, prose paragraphs, an optional
// table, and an optional preformatted block (trace trees keep their
// fixed-width alignment).
type Section struct {
	Title string
	Text  []string
	Table *Table
	Pre   string
}

// Report is the fused run report, renderable as Markdown or HTML.
type Report struct {
	Title    string
	RunID    string // the agreed join key ("" when no input carried one)
	Warning  string // non-fatal join diagnostics (AllowMismatch)
	Sources  []Source
	Sections []Section
}

// Build loads every named artifact, validates the run-ID join, and
// assembles the report sections.
func Build(in Inputs) (*Report, error) {
	if in.TracePath == "" && in.MetricsPath == "" && in.RunLogPath == "" &&
		in.ScalePath == "" && in.TensorPath == "" {
		return nil, fmt.Errorf("report: no inputs; name at least one artifact")
	}
	top := in.Top
	if top <= 0 {
		top = 10
	}
	r := &Report{Title: "SAM run report"}

	var traceStats, baseStats []obs.PathStat
	if in.TracePath != "" {
		recs, err := readTraceFile(in.TracePath)
		if err != nil {
			return nil, err
		}
		traceStats = obs.AnalyzeTrace(recs)
		r.Sources = append(r.Sources, Source{Kind: "trace", Path: in.TracePath, RunID: traceRunID(recs)})
	}
	if in.BaselinePath != "" {
		if in.TracePath == "" {
			return nil, fmt.Errorf("report: -baseline needs -trace to diff against")
		}
		recs, err := readTraceFile(in.BaselinePath)
		if err != nil {
			return nil, err
		}
		baseStats = obs.AnalyzeTrace(recs)
		// Baselines are a different run by design: listed, never joined.
		r.Sources = append(r.Sources, Source{Kind: "baseline", Path: in.BaselinePath})
	}

	var snap *obs.Snapshot
	var fams []obs.PromFamily
	if in.MetricsPath != "" {
		buf, err := os.ReadFile(in.MetricsPath)
		if err != nil {
			return nil, err
		}
		id := ""
		if isJSONSnapshot(buf) {
			var s obs.Snapshot
			if err := json.Unmarshal(buf, &s); err != nil {
				return nil, fmt.Errorf("report: %s: %w", in.MetricsPath, err)
			}
			snap = &s
			id = obs.RunIDFromSnapshot(s)
		} else {
			fams, err = obs.ParsePrometheus(bytes.NewReader(buf))
			if err != nil {
				return nil, fmt.Errorf("report: %s: %w", in.MetricsPath, err)
			}
			id = obs.RunIDFromFamilies(fams)
		}
		r.Sources = append(r.Sources, Source{Kind: "metrics", Path: in.MetricsPath, RunID: id})
	}

	var entries []obs.RunLogEntry
	if in.RunLogPath != "" {
		f, err := os.Open(in.RunLogPath)
		if err != nil {
			return nil, err
		}
		entries, err = obs.ReadRunLog(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("report: %s: %w", in.RunLogPath, err)
		}
		r.Sources = append(r.Sources, Source{Kind: "runlog", Path: in.RunLogPath, RunID: entries[0].RunID})
	}

	var scale *experiments.ScaleBenchReport
	if in.ScalePath != "" {
		if err := readJSON(in.ScalePath, &scale); err != nil {
			return nil, err
		}
		r.Sources = append(r.Sources, Source{Kind: "scale", Path: in.ScalePath, RunID: scale.RunID})
	}
	var tensor *experiments.TensorBenchReport
	if in.TensorPath != "" {
		if err := readJSON(in.TensorPath, &tensor); err != nil {
			return nil, err
		}
		r.Sources = append(r.Sources, Source{Kind: "tensor", Path: in.TensorPath})
	}

	if err := r.joinRunIDs(in.AllowMismatch); err != nil {
		return nil, err
	}

	r.Sections = append(r.Sections, sourcesSection(r))
	if traceStats != nil {
		r.Sections = append(r.Sections, traceSection(traceStats, top))
	}
	if baseStats != nil {
		r.Sections = append(r.Sections, diffSection(baseStats, traceStats, top))
	}
	if s := qerrorSection(entries, snap, fams); s != nil {
		r.Sections = append(r.Sections, *s)
	}
	if s := streamSection(entries); s != nil {
		r.Sections = append(r.Sections, *s)
	}
	if scale != nil {
		r.Sections = append(r.Sections, scaleSection(scale))
	}
	if tensor != nil {
		r.Sections = append(r.Sections, tensorSection(tensor))
	}
	if snap != nil {
		r.Sections = append(r.Sections, snapshotSection(snap))
	} else if fams != nil {
		r.Sections = append(r.Sections, familiesSection(fams))
	}
	return r, nil
}

// joinRunIDs enforces that every run-ID-carrying input claims the same
// run. Baselines and tensor reports are exempt (no RunID recorded).
func (r *Report) joinRunIDs(allowMismatch bool) error {
	ids := map[string][]string{} // id -> "kind(path)" claimants
	var order []string
	for _, s := range r.Sources {
		if s.RunID == "" {
			continue
		}
		if _, seen := ids[s.RunID]; !seen {
			order = append(order, s.RunID)
		}
		ids[s.RunID] = append(ids[s.RunID], fmt.Sprintf("%s(%s)", s.Kind, s.Path))
	}
	switch len(order) {
	case 0:
		return nil
	case 1:
		r.RunID = order[0]
		return nil
	}
	var parts []string
	for _, id := range order {
		parts = append(parts, fmt.Sprintf("%s from %s", id, strings.Join(ids[id], ", ")))
	}
	msg := "inputs disagree on the run ID: " + strings.Join(parts, "; ")
	if !allowMismatch {
		return fmt.Errorf("report: %s (re-run with matching artifacts or pass -allow-mismatch)", msg)
	}
	r.RunID = order[0]
	r.Warning = msg
	return nil
}

func readTraceFile(path string) ([]obs.SpanRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := obs.ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("report: %s: %w", path, err)
	}
	return recs, nil
}

// traceRunID pulls the run_id attribute off the trace's root span.
func traceRunID(recs []obs.SpanRecord) string {
	for _, rec := range recs {
		if rec.Parent != 0 {
			continue
		}
		if id, ok := rec.Attrs["run_id"].(string); ok {
			return id
		}
	}
	return ""
}

func readJSON(path string, v any) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(buf, v); err != nil {
		return fmt.Errorf("report: %s: %w", path, err)
	}
	return nil
}

// isJSONSnapshot distinguishes a /metrics.json payload from Prometheus
// text by the first non-space byte.
func isJSONSnapshot(buf []byte) bool {
	trimmed := bytes.TrimLeft(buf, " \t\r\n")
	return len(trimmed) > 0 && trimmed[0] == '{'
}

func sourcesSection(r *Report) Section {
	t := &Table{Header: []string{"kind", "path", "run id"}}
	for _, s := range r.Sources {
		id := s.RunID
		if id == "" {
			id = "-"
		}
		t.Rows = append(t.Rows, []string{s.Kind, s.Path, id})
	}
	var text []string
	if r.RunID != "" {
		text = append(text, fmt.Sprintf("Run ID: `%s`", r.RunID))
	}
	if r.Warning != "" {
		text = append(text, "**Warning:** "+r.Warning)
	}
	return Section{Title: "Inputs", Text: text, Table: t}
}

func traceSection(stats []obs.PathStat, top int) Section {
	var sb strings.Builder
	obs.WriteTraceTree(&sb, stats)
	sb.WriteString("\ntop spans by self time:\n")
	obs.WriteTopSpans(&sb, stats, top)
	return Section{
		Title: "Phase trace",
		Text: []string{fmt.Sprintf("%d span paths; total and self wall time with allocation attribution "+
			"(self = total minus direct children).", len(stats))},
		Pre: sb.String(),
	}
}

func diffSection(base, cur []obs.PathStat, top int) Section {
	deltas := obs.DiffTraces(base, cur)
	if top > 0 && len(deltas) > top {
		deltas = deltas[:top]
	}
	var sb strings.Builder
	obs.WriteTraceDiff(&sb, deltas)
	return Section{
		Title: "Trace diff vs baseline",
		Text:  []string{"Per-span wall and allocation deltas against the baseline trace (a = baseline, b = this run), largest absolute wall change first."},
		Pre:   sb.String(),
	}
}

// qerrorSection summarizes evaluation fidelity. The run log's eval_query
// entries give exact per-query values (quantiles computed here); absent a
// run log, the metrics snapshot's eval_qerror_by_* histogram summaries
// stand in.
func qerrorSection(entries []obs.RunLogEntry, snap *obs.Snapshot, fams []obs.PromFamily) *Section {
	var qs []obs.EvalQuery
	for _, e := range entries {
		if e.Kind != "eval_query" {
			continue
		}
		var q obs.EvalQuery
		if err := json.Unmarshal(e.Data, &q); err == nil {
			qs = append(qs, q)
		}
	}
	if len(qs) > 0 {
		t := &Table{Header: []string{"group", "queries", "mean", "median", "p90", "max"}}
		t.Rows = append(t.Rows, qerrorRow("all", qs))
		for _, group := range groupKeys(qs, func(q obs.EvalQuery) string { return q.Table }) {
			t.Rows = append(t.Rows, qerrorRow("table "+group.key, group.qs))
		}
		for _, group := range groupKeys(qs, func(q obs.EvalQuery) string { return predsLabel(q.Preds) }) {
			t.Rows = append(t.Rows, qerrorRow(group.key+" preds", group.qs))
		}
		return &Section{
			Title: "Q-Error",
			Text:  []string{fmt.Sprintf("%d evaluated queries from the run log, grouped by relation and predicate count.", len(qs))},
			Table: t,
		}
	}
	// Fall back to the labeled histogram families.
	t := &Table{Header: []string{"family", "count", "mean", "p50", "p90", "p99", "max"}}
	if snap != nil {
		keys := sortedKeys(snap.Histograms)
		for _, k := range keys {
			if !strings.HasPrefix(k, "eval_qerror") {
				continue
			}
			h := snap.Histograms[k]
			t.Rows = append(t.Rows, []string{k, fmt.Sprint(h.Count),
				fmtF(h.Mean), fmtF(h.P50), fmtF(h.P90), fmtF(h.P99), fmtF(h.Max)})
		}
	} else {
		for _, fam := range fams {
			if !strings.HasPrefix(fam.Name, "eval_qerror") || fam.Type != "histogram" {
				continue
			}
			for _, row := range famHistRows(fam) {
				t.Rows = append(t.Rows, row)
			}
		}
	}
	if len(t.Rows) == 0 {
		return nil
	}
	return &Section{
		Title: "Q-Error",
		Text:  []string{"Q-Error distribution from the metrics payload's eval_qerror families."},
		Table: t,
	}
}

type qGroup struct {
	key string
	qs  []obs.EvalQuery
}

func groupKeys(qs []obs.EvalQuery, key func(obs.EvalQuery) string) []qGroup {
	byKey := map[string][]obs.EvalQuery{}
	for _, q := range qs {
		k := key(q)
		if k == "" {
			continue
		}
		byKey[k] = append(byKey[k], q)
	}
	out := make([]qGroup, 0, len(byKey))
	for _, k := range sortedKeys(byKey) {
		out = append(out, qGroup{key: k, qs: byKey[k]})
	}
	return out
}

func predsLabel(n int) string {
	switch {
	case n <= 0:
		return "0"
	case n <= 2:
		return fmt.Sprint(n)
	default:
		return "3+"
	}
}

func qerrorRow(label string, qs []obs.EvalQuery) []string {
	vals := make([]float64, len(qs))
	sum := 0.0
	for i, q := range qs {
		vals[i] = q.QError
		sum += q.QError
	}
	sort.Float64s(vals)
	quant := func(p float64) float64 {
		return vals[int(p*float64(len(vals)-1)+0.5)]
	}
	return []string{label, fmt.Sprint(len(qs)), fmtF(sum / float64(len(qs))),
		fmtF(quant(0.5)), fmtF(quant(0.9)), fmtF(vals[len(vals)-1])}
}

// famHistRows summarizes one parsed Prometheus histogram family as
// count/mean rows (quantiles are not recoverable from buckets exactly, so
// they are omitted in scrape-driven reports).
func famHistRows(fam obs.PromFamily) [][]string {
	type agg struct {
		sum   float64
		count float64
	}
	byLabels := map[string]*agg{}
	var order []string
	for _, s := range fam.Samples {
		var lbls []string
		for _, l := range s.Labels {
			if l.Name == "le" {
				continue
			}
			lbls = append(lbls, l.Name+"="+l.Value)
		}
		key := strings.Join(lbls, ",")
		a := byLabels[key]
		if a == nil {
			a = &agg{}
			byLabels[key] = a
			order = append(order, key)
		}
		switch {
		case strings.HasSuffix(s.Name, "_sum"):
			a.sum = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			a.count = s.Value
		}
	}
	var out [][]string
	for _, key := range order {
		a := byLabels[key]
		if a.count == 0 {
			continue
		}
		name := fam.Name
		if key != "" {
			name += "{" + key + "}"
		}
		out = append(out, []string{name, fmt.Sprint(int64(a.count)),
			fmtF(a.sum / a.count), "-", "-", "-", "-"})
	}
	return out
}

// streamSection totals the run log's stream_pass events per pass: record
// flow, spill traffic, runs, and wall time, plus shard-level backpressure.
func streamSection(entries []obs.RunLogEntry) *Section {
	type agg struct {
		events         int
		in, out        int64
		runs           int
		bytesW, bytesR int64
		wall, bp       time.Duration
	}
	byPass := map[string]*agg{}
	for _, e := range entries {
		if e.Kind != "stream_pass" {
			continue
		}
		var p obs.StreamPass
		if err := json.Unmarshal(e.Data, &p); err != nil {
			continue
		}
		a := byPass[p.Pass]
		if a == nil {
			a = &agg{}
			byPass[p.Pass] = a
		}
		a.events++
		a.in += p.RecordsIn
		a.out += p.RecordsOut
		a.runs += p.Runs
		a.bytesW += p.BytesWritten
		a.bytesR += p.BytesRead
		a.wall += p.Wall
		a.bp += p.BackpressureWait
	}
	if len(byPass) == 0 {
		return nil
	}
	t := &Table{Header: []string{"pass", "events", "records in", "records out", "runs", "spill written", "spill read", "wall", "backpressure"}}
	for _, pass := range []string{"shard", "weight", "A", "B", "C"} {
		a := byPass[pass]
		if a == nil {
			continue
		}
		t.Rows = append(t.Rows, []string{pass, fmt.Sprint(a.events),
			fmt.Sprint(a.in), fmt.Sprint(a.out), fmt.Sprint(a.runs),
			fmtBytes(a.bytesW), fmtBytes(a.bytesR),
			fmtDur(a.wall), fmtDur(a.bp)})
	}
	return &Section{
		Title: "Streaming passes",
		Text: []string{"Per-pass totals from the run log's stream_pass events " +
			"(shard = sampling legs; weight = sample scan; A/B/C = spill partition, grouping, and allocation passes summed across tables)."},
		Table: t,
	}
}

func scaleSection(rep *experiments.ScaleBenchReport) Section {
	t := &Table{Header: []string{"metric", "value"}}
	add := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }
	add("rows", fmt.Sprint(rep.Rows))
	add("shards × workers", fmt.Sprintf("%d × %d (batch %d, %d partitions)", rep.Shards, rep.Workers, rep.Batch, rep.Partitions))
	add("rows/sec end-to-end", fmt.Sprintf("%.0f", rep.RowsPerSec))
	add("rows/sec sampling", fmt.Sprintf("%.0f", rep.SampleRowsPerSec))
	add("sample wall", fmt.Sprintf("%dms", rep.SampleWallMs))
	add("merge wall", fmt.Sprintf("%dms (weight %dms, A %dms, B %dms, C %dms)",
		rep.MergeWallMs, rep.WeightWallMs, rep.PassAWallMs, rep.PassBWallMs, rep.PassCWallMs))
	add("total wall", fmt.Sprintf("%dms", rep.TotalWallMs))
	add("peak heap", fmtBytes(rep.PeakHeapBytes))
	if rep.PeakRSSBytes > 0 {
		add("peak RSS", fmtBytes(rep.PeakRSSBytes))
	}
	add("shard bytes", fmtBytes(rep.ShardBytes))
	text := []string{rep.Description}
	if rep.Meta.GoVersion != "" {
		text = append(text, "Built with "+rep.Meta.String()+".")
	}
	return Section{Title: "Scale benchmark", Text: text, Table: t}
}

func tensorSection(rep *experiments.TensorBenchReport) Section {
	t := &Table{Header: []string{"benchmark", "ns/op", "speedup vs seed", "allocs/op", "B/op"}}
	for _, res := range rep.Results {
		t.Rows = append(t.Rows, []string{res.Name, fmt.Sprint(res.NsOp),
			fmt.Sprintf("%.2fx", res.Speedup), fmt.Sprint(res.AllocsOp), fmt.Sprint(res.BytesOp)})
	}
	return Section{Title: "Tensor benchmarks", Text: []string{rep.Description}, Table: t}
}

func snapshotSection(snap *obs.Snapshot) Section {
	var sb strings.Builder
	if len(snap.Counters) > 0 {
		sb.WriteString("counters:\n")
		for _, k := range sortedKeys(snap.Counters) {
			fmt.Fprintf(&sb, "  %-56s %d\n", k, snap.Counters[k])
		}
	}
	if len(snap.Gauges) > 0 {
		sb.WriteString("gauges:\n")
		for _, k := range sortedKeys(snap.Gauges) {
			fmt.Fprintf(&sb, "  %-56s %g\n", k, snap.Gauges[k])
		}
	}
	if len(snap.Histograms) > 0 {
		sb.WriteString("histograms:                                                   count       mean        p50        p90        p99        max\n")
		for _, k := range sortedKeys(snap.Histograms) {
			h := snap.Histograms[k]
			fmt.Fprintf(&sb, "  %-56s %7d %10.4g %10.4g %10.4g %10.4g %10.4g\n",
				k, h.Count, h.Mean, h.P50, h.P90, h.P99, h.Max)
		}
	}
	return Section{
		Title: "Metrics",
		Text:  []string{"Full registry snapshot (labeled children folded in as name{label=\"value\"})."},
		Pre:   sb.String(),
	}
}

func familiesSection(fams []obs.PromFamily) Section {
	var sb strings.Builder
	for _, fam := range fams {
		fmt.Fprintf(&sb, "%s (%s, %d samples)\n", fam.Name, fam.Type, len(fam.Samples))
		if fam.Type == "histogram" {
			continue // bucket series are noise in a summary
		}
		for _, s := range fam.Samples {
			var lbls []string
			for _, l := range s.Labels {
				lbls = append(lbls, fmt.Sprintf("%s=%q", l.Name, l.Value))
			}
			name := s.Name
			if len(lbls) > 0 {
				name += "{" + strings.Join(lbls, ",") + "}"
			}
			fmt.Fprintf(&sb, "  %-56s %g\n", name, s.Value)
		}
	}
	return Section{
		Title: "Metrics",
		Text:  []string{"Parsed Prometheus scrape (histogram bucket series elided)."},
		Pre:   sb.String(),
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func fmtF(v float64) string {
	return fmt.Sprintf("%.3g", v)
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
