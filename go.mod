module sam

go 1.22
