package sam_test

import (
	"math/rand"
	"testing"

	"sam"
	"sam/internal/workload"
)

// TestEndToEndSingleRelation exercises the documented public flow: build a
// schema, label a workload, train, generate, and check fidelity of the
// input constraints on the generated database.
func TestEndToEndSingleRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	age := sam.NewColumn("age", sam.Numeric, 50)
	city := sam.NewColumn("city", sam.Categorical, 8)
	for i := 0; i < 1000; i++ {
		a := rng.Intn(50)
		age.Append(int32(a))
		city.Append(int32((a / 7) % 8)) // city correlates with age
	}
	orig, err := sam.NewSchema(sam.NewTable("people", age, city))
	if err != nil {
		t.Fatal(err)
	}

	queries := workload.GenerateSingleRelation(rng, orig.Tables[0], 120, workload.DefaultSingleRelationOptions())
	wl := &sam.Workload{Queries: sam.Label(orig, queries)}

	layout := sam.NewLayout(orig)
	cfg := sam.DefaultTrainConfig()
	cfg.Epochs = 25
	cfg.Model.Hidden = 32
	model, err := sam.Train(layout, wl, 1000, cfg)
	if err != nil {
		t.Fatal(err)
	}

	db, err := sam.Generate(model, map[string]int{"people": 1000}, sam.DefaultGenOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if db.Tables[0].NumRows() != 1000 {
		t.Fatalf("generated %d rows", db.Tables[0].NumRows())
	}

	var qerrs []float64
	for i := range wl.Queries {
		got := sam.Card(db, &wl.Queries[i].Query)
		qerrs = append(qerrs, sam.QError(float64(got), float64(wl.Queries[i].Card)))
	}
	sum := sam.Summarize(qerrs)
	if sum.Median > 4 {
		t.Fatalf("median input-query Q-Error %.2f too high (%v)", sum.Median, sum)
	}

	h := sam.CrossEntropyBits(orig.Tables[0], db.Tables[0])
	if h <= 0 {
		t.Fatalf("cross entropy %v", h)
	}
}

func TestFacadeHelpers(t *testing.T) {
	c := sam.NewColumn("x", sam.Categorical, 3)
	c.Append(0)
	c.Append(2)
	tab := sam.NewTable("t", c)
	s, err := sam.NewSchema(tab)
	if err != nil {
		t.Fatal(err)
	}
	q := sam.Query{Tables: []string{"t"}, Preds: []sam.Predicate{{Table: "t", Column: "x", Op: sam.GE, Code: 1}}}
	if got := sam.Card(s, &q); got != 1 {
		t.Fatalf("Card = %d", got)
	}
	if sam.FOJSize(s) != 2 {
		t.Fatalf("FOJSize = %d", sam.FOJSize(s))
	}
	labeled := sam.Label(s, []sam.Query{q})
	if len(labeled) != 1 || labeled[0].Card != 1 {
		t.Fatal("Label broken")
	}
}

func TestEstimateFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := sam.NewColumn("x", sam.Categorical, 5)
	for i := 0; i < 200; i++ {
		c.Append(int32(rng.Intn(5)))
	}
	s, err := sam.NewSchema(sam.NewTable("t", c))
	if err != nil {
		t.Fatal(err)
	}
	queries := sam.GenerateQueries(4, s, 40, sam.DefaultWorkloadOptions(s))
	wl := &sam.Workload{Queries: sam.Label(s, queries)}
	cfg := sam.DefaultTrainConfig()
	cfg.Epochs = 20
	cfg.Model.Hidden = 16
	m, err := sam.Train(sam.NewLayout(s), wl, 200, cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := sam.Estimate(m, 5, &wl.Queries[0].Query, 8)
	if err != nil {
		t.Fatal(err)
	}
	if est <= 0 || est > 1000 {
		t.Fatalf("estimate %v out of range", est)
	}
	stats := sam.WorkloadStats(wl)
	if stats.Queries != 40 {
		t.Fatalf("stats %+v", stats)
	}
}
