// Census example: the paper's single-relation benchmarking scenario. A
// census-like table plays the hidden customer database; the cloud provider
// sees only a labeled query workload, trains SAM, generates a synthetic
// database, and evaluates both fidelity (input constraints) and recovery
// (unseen test queries, cross entropy).
//
//	go run ./examples/census [-rows N] [-queries N] [-epochs N]
package main

import (
	"flag"
	"fmt"
	"log"

	"sam"
)

func main() {
	rows := flag.Int("rows", 8000, "rows in the hidden census-like table")
	queries := flag.Int("queries", 1200, "training workload size")
	testQ := flag.Int("test", 300, "test workload size")
	epochs := flag.Int("epochs", 8, "training epochs")
	flag.Parse()

	hidden := sam.CensusLike(1, *rows)
	table := hidden.Tables[0]
	fmt.Printf("hidden database: %d rows × %d columns (domains 2..123)\n", table.NumRows(), len(table.Cols))

	opts := sam.DefaultWorkloadOptions(hidden)
	trainQ := sam.GenerateQueries(2, hidden, *queries, opts)
	wl := &sam.Workload{Queries: sam.Label(hidden, trainQ)}
	test := &sam.Workload{Queries: sam.Label(hidden, sam.GenerateQueries(3, hidden, *testQ, opts))}

	layout := sam.NewLayout(hidden)
	cfg := sam.DefaultTrainConfig()
	cfg.Epochs = *epochs
	cfg.Logf = log.Printf
	model, err := sam.Train(layout, wl, float64(table.NumRows()), cfg)
	if err != nil {
		log.Fatal(err)
	}

	db, err := sam.Generate(model, map[string]int{table.Name: table.NumRows()}, sam.DefaultGenOptions(4))
	if err != nil {
		log.Fatal(err)
	}

	report := func(name string, w *sam.Workload) {
		var qerrs []float64
		for i := range w.Queries {
			got := sam.Card(db, &w.Queries[i].Query)
			qerrs = append(qerrs, sam.QError(float64(got), float64(w.Queries[i].Card)))
		}
		fmt.Printf("%-14s Q-Error: %v\n", name, sam.Summarize(qerrs))
	}
	report("input queries", wl)
	report("test queries", test)
	fmt.Printf("cross entropy: %.2f bits\n", sam.CrossEntropyBits(table, db.Tables[0]))
}
