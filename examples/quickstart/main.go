// Quickstart: generate a synthetic single-relation database from nothing
// but a query workload — the minimal SAM flow on a hand-built table.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sam"
)

func main() {
	// 1. The "hidden" database SAM will never read directly: 1,000 people
	// with an age column and a city that correlates with age.
	rng := rand.New(rand.NewSource(42))
	age := sam.NewColumn("age", sam.Numeric, 60)
	city := sam.NewColumn("city", sam.Categorical, 10)
	for i := 0; i < 1000; i++ {
		a := rng.Intn(60)
		age.Append(int32(a))
		city.Append(int32((a / 6) % 10))
	}
	hidden, err := sam.NewSchema(sam.NewTable("people", age, city))
	if err != nil {
		log.Fatal(err)
	}

	// 2. The workload: 150 random range/point queries, labeled with their
	// true cardinalities. This is the only thing SAM sees.
	queries := sam.GenerateQueries(1, hidden, 150, sam.DefaultWorkloadOptions(hidden))
	wl := &sam.Workload{Queries: sam.Label(hidden, queries)}
	fmt.Printf("workload: %d cardinality constraints\n", wl.Len())

	// 3. Train the autoregressive model from the constraints.
	layout := sam.NewLayout(hidden)
	cfg := sam.DefaultTrainConfig()
	cfg.Epochs = 30
	cfg.Model.Hidden = 32
	cfg.Logf = log.Printf
	model, err := sam.Train(layout, wl, 1000, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Generate a synthetic database of the same size.
	db, err := sam.Generate(model, map[string]int{"people": 1000}, sam.DefaultGenOptions(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d rows\n", db.Tables[0].NumRows())

	// 5. Fidelity: how well does the synthetic database satisfy the input
	// constraints?
	var qerrs []float64
	for i := range wl.Queries {
		got := sam.Card(db, &wl.Queries[i].Query)
		qerrs = append(qerrs, sam.QError(float64(got), float64(wl.Queries[i].Card)))
	}
	fmt.Printf("input-query Q-Error: %v\n", sam.Summarize(qerrs))
	fmt.Printf("cross entropy vs hidden data: %.2f bits\n",
		sam.CrossEntropyBits(hidden.Tables[0], db.Tables[0]))
}
