// IMDB example: the paper's multi-relation scenario. A 6-relation
// JOB-light-style star schema is the hidden database; SAM learns a single
// autoregressive model of the full outer join from a mixed single-relation
// and join-query workload, then generates all six base relations with
// inverse probability weighting, scaling, and Group-and-Merge join-key
// assignment. The Group-and-Merge ablation is reported alongside.
//
//	go run ./examples/imdb [-titles N] [-queries N] [-epochs N] [-samples N]
package main

import (
	"flag"
	"fmt"
	"log"

	"sam"
)

func main() {
	titles := flag.Int("titles", 1200, "title rows in the hidden database")
	queries := flag.Int("queries", 1200, "training workload size")
	epochs := flag.Int("epochs", 12, "training epochs")
	samples := flag.Int("samples", 40000, "full-outer-join samples for generation")
	flag.Parse()

	hidden := sam.IMDBLike(1, *titles)
	fmt.Printf("hidden database: %d relations, %d total rows, FOJ size %d\n",
		len(hidden.Tables), totalRows(hidden), sam.FOJSize(hidden))

	wl := &sam.Workload{Queries: sam.Label(hidden,
		sam.GenerateQueries(2, hidden, *queries, sam.DefaultWorkloadOptions(hidden)))}

	layout := sam.NewLayout(hidden)
	cfg := sam.DefaultTrainConfig()
	cfg.Epochs = *epochs
	cfg.Logf = log.Printf
	model, err := sam.Train(layout, wl, float64(sam.FOJSize(hidden)), cfg)
	if err != nil {
		log.Fatal(err)
	}

	sizes := map[string]int{}
	for _, t := range hidden.Tables {
		sizes[t.Name] = t.NumRows()
	}
	for _, gam := range []bool{true, false} {
		opts := sam.DefaultGenOptions(4)
		opts.Samples = *samples
		opts.GroupAndMerge = gam
		db, err := sam.Generate(model, sizes, opts)
		if err != nil {
			log.Fatal(err)
		}
		var qerrs []float64
		for i := range wl.Queries {
			got := sam.Card(db, &wl.Queries[i].Query)
			qerrs = append(qerrs, sam.QError(float64(got), float64(wl.Queries[i].Card)))
		}
		name := "SAM"
		if !gam {
			name = "SAM w/o Group-and-Merge"
		}
		fmt.Printf("%-24s input-query Q-Error: %v\n", name, sam.Summarize(qerrs))
		fmt.Printf("%-24s title cross entropy: %.2f bits\n", name,
			sam.CrossEntropyBits(hidden.Table("title"), db.Table("title")))
	}
}

func totalRows(s *sam.Schema) int {
	n := 0
	for _, t := range s.Tables {
		n += t.NumRows()
	}
	return n
}
