// Stress-test example: the paper's second motivating use case. A
// production database with strict access controls cannot be copied into a
// staging environment, but its query log (with result cardinalities) can.
// This example generates a synthetic stand-in from the log and then
// replays an unseen traffic mix against both databases, reporting the
// per-query performance deviation — the signal that tells an engineer
// whether load-testing against the synthetic database is representative.
//
//	go run ./examples/stresstest [-rows N] [-queries N]
package main

import (
	"flag"
	"fmt"
	"log"

	"sam"
)

func main() {
	rows := flag.Int("rows", 10000, "rows in the production table")
	queries := flag.Int("queries", 1000, "logged queries available for training")
	replay := flag.Int("replay", 200, "replayed traffic queries")
	flag.Parse()

	// The "production" database: the DMV-like table (11 columns, domains
	// up to 2101 — the paper's widest single relation).
	prod := sam.DMVLike(7, *rows)
	table := prod.Tables[0]
	fmt.Printf("production database: %d rows × %d columns\n", table.NumRows(), len(table.Cols))

	// The query log the staging team is allowed to see.
	logWl := &sam.Workload{Queries: sam.Label(prod,
		sam.GenerateQueries(8, prod, *queries, sam.DefaultWorkloadOptions(prod)))}

	cfg := sam.DefaultTrainConfig()
	cfg.Epochs = 6
	cfg.Logf = log.Printf
	model, err := sam.Train(sam.NewLayout(prod), logWl, float64(table.NumRows()), cfg)
	if err != nil {
		log.Fatal(err)
	}
	staging, err := sam.Generate(model, map[string]int{table.Name: table.NumRows()}, sam.DefaultGenOptions(9))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("staging database generated: %d rows\n", staging.Tables[0].NumRows())

	// Replay unseen traffic against both databases and compare latency and
	// result sizes.
	traffic := sam.GenerateQueries(10, prod, *replay, sam.DefaultWorkloadOptions(prod))
	var devMs, qerrs []float64
	for i := range traffic {
		q := &traffic[i]
		cardPrig, latProd := sam.TimedCard(prod, q)
		cardStag, latStag := sam.TimedCard(staging, q)
		devMs = append(devMs, absF(latStag.Seconds()-latProd.Seconds())*1000)
		qerrs = append(qerrs, sam.QError(float64(cardStag), float64(cardPrig)))
	}
	fmt.Printf("replayed %d queries\n", len(traffic))
	fmt.Printf("result-size Q-Error:        %v\n", sam.Summarize(qerrs))
	fmt.Printf("performance deviation (ms): %v\n", sam.Summarize(devMs))
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
