// Chain example: a TPC-H-flavoured customer ← orders ← lineitem schema,
// where join keys nest two levels deep. The workload is written as
// COUNT(*) SQL (the way real query logs look) and parsed by the built-in
// SQL front end; SAM learns the chain's joint distribution and
// Group-and-Merge assigns keys recursively down the tree.
//
//	go run ./examples/chain [-customers N] [-queries N] [-epochs N]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"sam"
	"sam/internal/sqlparse"
)

func main() {
	customers := flag.Int("customers", 600, "customer rows in the hidden database")
	queries := flag.Int("queries", 800, "random training queries")
	epochs := flag.Int("epochs", 12, "training epochs")
	flag.Parse()

	hidden := sam.TPCHLike(1, *customers)
	fmt.Printf("hidden chain database: customer %d ← orders %d ← lineitem %d (FOJ %d)\n",
		hidden.Table("customer").NumRows(), hidden.Table("orders").NumRows(),
		hidden.Table("lineitem").NumRows(), sam.FOJSize(hidden))

	// A few hand-written SQL queries demonstrate the log-style front end...
	sql := `
	SELECT COUNT(*) FROM customer WHERE mktsegment <= 2;
	SELECT COUNT(*) FROM customer c, orders o
	  WHERE c.id = o.custkey AND c.mktsegment = 1 AND o.orderpriority >= 2;
	SELECT COUNT(*) FROM customer c, orders o, lineitem l
	  WHERE c.id = o.custkey AND o.id = l.orderkey AND l.quantity >= 25;`
	sqlQueries, err := sqlparse.ParseAll(sql, hidden)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d SQL queries from the log snippet\n", len(sqlQueries))

	// ...and the bulk of the workload is generated randomly, as in §5.1.
	all := append(sqlQueries,
		sam.GenerateQueries(2, hidden, *queries, sam.DefaultWorkloadOptions(hidden))...)
	wl := &sam.Workload{Queries: sam.Label(hidden, all)}

	cfg := sam.DefaultTrainConfig()
	cfg.Epochs = *epochs
	cfg.Logf = log.Printf
	model, err := sam.Train(sam.NewLayout(hidden), wl, float64(sam.FOJSize(hidden)), cfg)
	if err != nil {
		log.Fatal(err)
	}
	sizes := map[string]int{}
	for _, t := range hidden.Tables {
		sizes[t.Name] = t.NumRows()
	}
	opts := sam.DefaultGenOptions(3)
	opts.Samples = 30000
	db, err := sam.Generate(model, sizes, opts)
	if err != nil {
		log.Fatal(err)
	}

	var qerrs []float64
	for i := range wl.Queries {
		got := sam.Card(db, &wl.Queries[i].Query)
		qerrs = append(qerrs, sam.QError(float64(got), float64(wl.Queries[i].Card)))
	}
	fmt.Printf("input-query Q-Error: %v\n", sam.Summarize(qerrs))

	// Unseen 3-way chain joins: the recursive key assignment is what keeps
	// these close.
	rng := rand.New(rand.NewSource(9))
	var deep []float64
	for trial := 0; trial < 100; trial++ {
		q := sam.Query{
			Tables: []string{"customer", "orders", "lineitem"},
			Preds: []sam.Predicate{
				{Table: "customer", Column: "mktsegment", Op: sam.LE, Code: int32(rng.Intn(5))},
				{Table: "lineitem", Column: "quantity", Op: sam.GE, Code: int32(rng.Intn(50))},
			},
		}
		truth := sam.Card(hidden, &q)
		if truth == 0 {
			continue
		}
		deep = append(deep, sam.QError(float64(sam.Card(db, &q)), float64(truth)))
	}
	fmt.Printf("unseen 3-way chain joins (%d queries): %v\n", len(deep), sam.Summarize(deep))
	fmt.Println(strings.Repeat("-", 60))
	fmt.Println("generated tables:", sizesLine(db))
}

func sizesLine(s *sam.Schema) string {
	var parts []string
	for _, t := range s.Tables {
		parts = append(parts, fmt.Sprintf("%s=%d", t.Name, t.NumRows()))
	}
	return strings.Join(parts, " ")
}
