// Command saminspect inspects SAM artifacts: it describes a labeled
// workload (shape, operators, coverage) and, when given a saved model,
// prints its layout, discretizer sizes, and per-column marginals sampled
// from the model — the quickest way to see what a trained model believes
// before generating a database from it.
//
// Usage:
//
//	saminspect -workload wl.json -schema schema.json [-model model.json] [-marginals N]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"

	"sam/internal/ar"
	"sam/internal/nn"
	"sam/internal/obs"
	"sam/internal/relation"
	"sam/internal/workload"
)

func main() {
	log.SetFlags(0)
	wlPath := flag.String("workload", "", "labeled workload (JSON)")
	schemaPath := flag.String("schema", "", "schema metadata (JSON)")
	modelPath := flag.String("model", "", "model saved by samgen -save")
	marginals := flag.Int("marginals", 2000, "samples used to estimate model marginals")
	batch := flag.Int("batch", 64, "ancestral-sampling lanes for marginal estimation (<=1 samples one tuple at a time)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /metrics on this address (e.g. :6060)")
	flag.Parse()

	if *debugAddr != "" {
		addr, closeDebug, err := obs.ServeDebug(*debugAddr, obs.Default(), nil)
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		defer closeDebug()
		log.Printf("debug server on http://%s (pprof, expvar, /metrics, /metrics.json)", addr)
	}

	var spec relation.SchemaSpec
	if *schemaPath != "" {
		f, err := os.Open(*schemaPath)
		if err != nil {
			log.Fatal(err)
		}
		spec, err = relation.ReadSpec(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("== schema ==")
		for _, t := range spec.Tables {
			fmt.Printf("  %-16s %8d rows, %d columns", t.Name, t.Rows, len(t.Columns))
			if t.Parent != "" {
				fmt.Printf(", FK → %s", t.Parent)
			}
			fmt.Println()
		}
	}

	if *wlPath != "" {
		f, err := os.Open(*wlPath)
		if err != nil {
			log.Fatal(err)
		}
		wl, err := workload.Read(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("== workload ==")
		fmt.Print(workload.ComputeStats(wl).String())
		if *schemaPath != "" {
			domains := map[string]int{}
			for _, t := range spec.Tables {
				for _, c := range t.Columns {
					domains[t.Name+"."+c.Name] = c.Domain
				}
			}
			ratios := workload.CoverageRatios(wl, domains)
			keys := make([]string, 0, len(ratios))
			for k := range ratios {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Println("coverage (literal span / domain):")
			for _, k := range keys {
				fmt.Printf("  %-28s %.2f\n", k, ratios[k])
			}
		}
	}

	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		m, err := ar.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("== model ==")
		fmt.Printf("  arch: %s, %d parameters, population %.0f\n",
			archName(m.Cfg.Arch), nn.NumParams(m.Net), m.Population)
		fmt.Printf("  %d model columns:\n", m.Layout.NumCols())
		marg := sampleMarginals(m, *marginals, *batch)
		for i, c := range m.Layout.Cols {
			fmt.Printf("  %-28s %-9s %4d bins  top: %s\n",
				c.Name(), c.Kind, m.Disc[i].Bins(), topBins(marg[i], 3))
		}
	}
}

func archName(a string) string {
	if a == "" {
		return "made"
	}
	return a
}

// sampleMarginals estimates per-column bin frequencies from n ancestral
// samples, drawn batch lanes at a time (batch <= 1 falls back to the
// per-tuple sampler).
func sampleMarginals(m *ar.Model, n, batch int) [][]float64 {
	ncols := m.Layout.NumCols()
	out := make([][]float64, ncols)
	for i := range out {
		out[i] = make([]float64, m.Disc[i].Bins())
	}
	if n <= 0 {
		return out
	}
	count := func(dst []int32) {
		for i, b := range dst {
			out[i][b]++
		}
	}
	if batch > 1 {
		s := m.NewBatchSampler(batch)
		rngs := make([]*rand.Rand, batch)
		for l := range rngs {
			rngs[l] = rand.New(rand.NewSource(1 + int64(l)*7919))
		}
		dst := make([]int32, batch*ncols)
		for drawn := 0; drawn < n; drawn += batch {
			lanes := batch
			if rest := n - drawn; rest < lanes {
				lanes = rest
			}
			s.SampleFOJBatch(rngs[:lanes], dst[:lanes*ncols])
			for l := 0; l < lanes; l++ {
				count(dst[l*ncols : (l+1)*ncols])
			}
		}
	} else {
		s := m.NewSampler()
		rng := rand.New(rand.NewSource(1))
		dst := make([]int32, ncols)
		for it := 0; it < n; it++ {
			s.SampleFOJ(rng, dst)
			count(dst)
		}
	}
	for i := range out {
		for b := range out[i] {
			out[i][b] /= float64(n)
		}
	}
	return out
}

// topBins renders the k most probable bins of a marginal.
func topBins(marg []float64, k int) string {
	type bp struct {
		bin int
		p   float64
	}
	bps := make([]bp, len(marg))
	for b, p := range marg {
		bps[b] = bp{b, p}
	}
	sort.Slice(bps, func(i, j int) bool { return bps[i].p > bps[j].p })
	if k > len(bps) {
		k = len(bps)
	}
	s := ""
	for i := 0; i < k; i++ {
		if bps[i].p == 0 {
			break
		}
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%.2f", bps[i].bin, bps[i].p)
	}
	return s
}
