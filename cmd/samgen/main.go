// Command samgen is the full SAM pipeline as a tool: it trains an
// autoregressive model from a labeled query workload plus schema metadata
// (never touching the underlying data) and writes a generated database as
// one CSV file per table.
//
// Usage:
//
//	samgen -workload workload.json -schema schema.json -outdir gen/ \
//	       [-population N] [-epochs N] [-hidden N] [-samples N] [-seed N] [-no-gam] \
//	       [-trace out.jsonl] [-progress] [-debug-addr :6060]
//
// -population is required for multi-relation schemas (the full outer join
// size, printed by workloadgen).
//
// -trace records the pipeline's phase tree (train/sample/weight/merge
// spans with wall time and allocation deltas) as JSONL and prints its
// summary; -progress streams per-epoch loss (with an ETA), throttled
// sampling progress, and per-phase generation stats to stderr;
// -debug-addr serves live pprof/expvar, Prometheus metrics at /metrics
// (JSON at /metrics.json), and the recent-event ring at /debug/events.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"sam/internal/ar"
	"sam/internal/core"
	"sam/internal/join"
	"sam/internal/nn"
	"sam/internal/obs"
	"sam/internal/relation"
	"sam/internal/workload"
)

func main() {
	log.SetFlags(0)
	wlPath := flag.String("workload", "workload.json", "labeled workload (JSON)")
	schemaPath := flag.String("schema", "schema.json", "schema metadata (JSON)")
	outDir := flag.String("outdir", "generated", "output directory for CSVs")
	population := flag.Float64("population", 0, "full outer join size (multi-relation only; single-relation defaults to |T|)")
	epochs := flag.Int("epochs", 6, "training epochs")
	hidden := flag.Int("hidden", 64, "hidden width of the MADE backbone")
	samples := flag.Int("samples", 0, "FOJ samples for generation (0 = auto)")
	batch := flag.Int("batch", 64, "ancestral-sampling lanes per worker (<=1 samples one tuple at a time)")
	seed := flag.Int64("seed", 1, "random seed")
	noGam := flag.Bool("no-gam", false, "disable Group-and-Merge (ablation)")
	arch := flag.String("arch", "made", "autoregressive backbone: made or transformer")
	savePath := flag.String("save", "", "save the trained model to this path")
	loadPath := flag.String("load", "", "skip training and load a model saved with -save")
	traceOut := flag.String("trace", "", "write the pipeline's phase trace (JSONL spans) to this file")
	progress := flag.Bool("progress", false, "stream per-epoch training and per-phase generation progress to stderr")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /metrics on this address (e.g. :6060)")
	flag.Parse()

	var hooks *obs.Hooks
	if *debugAddr != "" {
		events := obs.NewEventLog(obs.DefaultEventLogSize)
		hooks = obs.Merge(obs.MetricsHooks(obs.Default()), obs.EventLogHooks(events))
		addr, closeDebug, err := obs.ServeDebug(*debugAddr, obs.Default(), events)
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		defer closeDebug()
		log.Printf("debug server on http://%s (pprof, expvar, /metrics, /metrics.json, /debug/events)", addr)
	}
	if *progress {
		hooks = obs.Merge(hooks, obs.ProgressHooks(os.Stderr))
	}
	var trace *obs.Trace
	if *traceOut != "" {
		trace = obs.NewTrace("samgen")
		root := trace.Root()
		root.SetAttr("seed", *seed)
		obs.BuildMeta().SetAttrs(root)
	}
	tel := telemetry{hooks: hooks, trace: trace, traceOut: *traceOut}

	if *loadPath != "" {
		mf, err := os.Open(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
		model, err := ar.Load(mf)
		mf.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded model (%d parameters)", nn.NumParams(model.Net))
		// Target sizes come from the schema metadata file (the model file
		// stores the schema shape, not the row counts).
		sf, err := os.Open(*schemaPath)
		if err != nil {
			log.Fatal(err)
		}
		sspec, err := relation.ReadSpec(sf)
		sf.Close()
		if err != nil {
			log.Fatal(err)
		}
		generateAndWrite(model, sspec.Sizes(), *outDir, *samples, *batch, *seed, !*noGam, tel)
		return
	}

	sf, err := os.Open(*schemaPath)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := relation.ReadSpec(sf)
	sf.Close()
	if err != nil {
		log.Fatal(err)
	}
	shell, err := spec.EmptySchema()
	if err != nil {
		log.Fatal(err)
	}
	sizes := spec.Sizes()

	wf, err := os.Open(*wlPath)
	if err != nil {
		log.Fatal(err)
	}
	wl, err := workload.Read(wf)
	wf.Close()
	if err != nil {
		log.Fatal(err)
	}
	for i := range wl.Queries {
		if err := wl.Queries[i].Validate(shell); err != nil {
			log.Fatalf("workload query %d: %v", i, err)
		}
	}

	pop := *population
	if pop <= 0 {
		if !shell.SingleTable() {
			log.Fatal("multi-relation schema requires -population (the full outer join size)")
		}
		pop = float64(sizes[shell.Tables[0].Name])
	}

	layout := join.NewLayout(shell)
	cfg := ar.DefaultTrainConfig()
	cfg.Epochs = *epochs
	cfg.Model.Hidden = *hidden
	cfg.Model.Arch = *arch
	cfg.Seed = *seed
	cfg.Logf = log.Printf
	cfg.Hooks = tel.hooks
	cfg.Span = tel.trace.Root()
	log.Printf("training SAM on %d cardinality constraints (%d model columns)...", wl.Len(), layout.NumCols())
	start := time.Now()
	model, err := ar.Train(layout, wl, pop, cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("trained in %v (%d parameters)", time.Since(start).Round(time.Millisecond), nn.NumParams(model.Net))

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := model.Save(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("saved model to %s", *savePath)
	}

	generateAndWrite(model, sizes, *outDir, *samples, *batch, *seed, !*noGam, tel)
}

// telemetry bundles the optional observer state the flags configured.
type telemetry struct {
	hooks    *obs.Hooks
	trace    *obs.Trace
	traceOut string
}

// flush ends the trace, writes the JSONL file, and prints the phase
// summary. No-op when tracing is off.
func (tel telemetry) flush() {
	if tel.trace == nil {
		return
	}
	tel.trace.Root().End()
	f, err := os.Create(tel.traceOut)
	if err != nil {
		log.Fatalf("trace: %v", err)
	}
	if err := tel.trace.WriteJSONL(f); err != nil {
		f.Close()
		log.Fatalf("trace: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("trace: %v", err)
	}
	fmt.Println("== phase trace ==")
	fmt.Print(tel.trace.Summary())
	log.Printf("trace written to %s", tel.traceOut)
}

// generateAndWrite runs the generation phase and writes one CSV per table.
func generateAndWrite(model *ar.Model, sizes map[string]int, outDir string, samples, batch int, seed int64, gam bool, tel telemetry) {
	gen, err := core.FromModel(model, sizes)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.DefaultGenOptions(seed + 1)
	opts.Samples = samples
	opts.GroupAndMerge = gam
	opts.Batch = batch
	opts.Hooks = tel.hooks
	opts.Span = tel.trace.Root()
	start := time.Now()
	db, err := gen.Generate(core.ModelSampler(model, opts.Batch), opts)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("generated database in %v", time.Since(start).Round(time.Millisecond))

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, t := range db.Tables {
		path := filepath.Join(outDir, t.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s (%d rows)", path, t.NumRows())
	}
	tel.flush()
}
