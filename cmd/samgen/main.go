// Command samgen is the full SAM pipeline as a tool: it trains an
// autoregressive model from a labeled query workload plus schema metadata
// (never touching the underlying data) and writes a generated database as
// one CSV file per table.
//
// Usage:
//
//	samgen -workload workload.json -schema schema.json -outdir gen/ \
//	       [-population N] [-epochs N] [-hidden N] [-samples N] [-seed N] [-no-gam] \
//	       [-stream] [-shards N] [-workers N] [-partitions N] [-keep-samples] \
//	       [-trace out.jsonl] [-runlog run.jsonl] [-metrics-out metrics.prom] \
//	       [-progress] [-debug-addr :6060]
//
// -population is required for multi-relation schemas (the full outer join
// size, printed by workloadgen).
//
// -stream removes the in-memory row-count ceiling: sampling is sharded
// into independently reproducible (seed, shard) units under outdir/shards
// and tables are merged and written through bounded-memory spill files, so
// peak memory no longer grows with -samples. -workers parallelizes across
// shards without changing a single output byte.
//
// -trace records the pipeline's phase tree (train/sample/weight/merge
// spans with wall time and allocation deltas) as JSONL and prints its
// summary; -progress streams per-epoch loss (with an ETA), throttled
// sampling progress, and per-phase generation stats to stderr;
// -debug-addr serves live pprof/expvar, Prometheus metrics at /metrics
// (JSON at /metrics.json), and the recent-event ring at /debug/events.
// -runlog appends every pipeline event as structured JSONL and
// -metrics-out snapshots the final registry as Prometheus text. Every
// invocation mints a run ID stamped into all of these (trace root attr,
// run log lines, the sam_run_info family), which is how cmd/samreport
// joins a run's artifacts back together.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"sam/internal/ar"
	"sam/internal/core"
	"sam/internal/join"
	"sam/internal/nn"
	"sam/internal/obs"
	"sam/internal/relation"
	"sam/internal/workload"
)

func main() {
	log.SetFlags(0)
	wlPath := flag.String("workload", "workload.json", "labeled workload (JSON)")
	schemaPath := flag.String("schema", "schema.json", "schema metadata (JSON)")
	outDir := flag.String("outdir", "generated", "output directory for CSVs")
	flag.StringVar(outDir, "out-dir", "generated", "alias for -outdir")
	stream := flag.Bool("stream", false, "bounded-memory generation: shard the sampler and stream tables to disk (removes the in-memory row-count ceiling)")
	shards := flag.Int("shards", 0, "sample shards for -stream (0 = one per 256Ki rows); each shard is independently reproducible from (seed, shard)")
	workers := flag.Int("workers", 0, "sampling goroutines (0 = GOMAXPROCS); with -stream, workers parallelize across shards without changing output bytes")
	partitions := flag.Int("partitions", 0, "spill partitions for the external group-and-merge (0 = 64)")
	keepSamples := flag.Bool("keep-samples", false, "keep the binary sample shards under outdir/shards after -stream generation")
	population := flag.Float64("population", 0, "full outer join size (multi-relation only; single-relation defaults to |T|)")
	epochs := flag.Int("epochs", 6, "training epochs")
	hidden := flag.Int("hidden", 64, "hidden width of the MADE backbone")
	samples := flag.Int("samples", 0, "FOJ samples for generation (0 = auto)")
	batch := flag.Int("batch", 64, "ancestral-sampling lanes per worker (<=1 samples one tuple at a time)")
	seed := flag.Int64("seed", 1, "random seed")
	noGam := flag.Bool("no-gam", false, "disable Group-and-Merge (ablation)")
	arch := flag.String("arch", "made", "autoregressive backbone: made or transformer")
	savePath := flag.String("save", "", "save the trained model to this path")
	loadPath := flag.String("load", "", "skip training and load a model saved with -save")
	traceOut := flag.String("trace", "", "write the pipeline's phase trace (JSONL spans) to this file")
	runlogOut := flag.String("runlog", "", "append the run's structured events as JSONL (framed by run_start/run_end and stamped with the run ID) to this file")
	metricsOut := flag.String("metrics-out", "", "write the final telemetry registry in Prometheus text format to this file at exit")
	progress := flag.Bool("progress", false, "stream per-epoch training and per-phase generation progress to stderr")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /metrics on this address (e.g. :6060)")
	flag.Parse()

	// One run ID correlates every artifact this invocation emits: the
	// trace root, the event ring, the sam_run_info metric family, and the
	// run log. samreport joins them back together by it.
	runID := obs.NewRunID()
	var hooks *obs.Hooks
	var reg *obs.Registry
	if *debugAddr != "" || *metricsOut != "" {
		reg = obs.Default()
		obs.StampRunInfo(reg, runID, obs.BuildMeta())
		hooks = obs.MetricsHooks(reg)
	}
	if *debugAddr != "" {
		events := obs.NewEventLog(obs.DefaultEventLogSize)
		events.SetRunID(runID)
		hooks = obs.Merge(hooks, obs.EventLogHooks(events))
		addr, closeDebug, err := obs.ServeDebug(*debugAddr, reg, events)
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		defer closeDebug()
		log.Printf("debug server on http://%s (pprof, expvar, /metrics, /metrics.json, /debug/events)", addr)
	}
	if *progress {
		hooks = obs.Merge(hooks, obs.ProgressHooks(os.Stderr))
	}
	var runlog *obs.RunLog
	var runlogFile *os.File
	if *runlogOut != "" {
		f, err := os.Create(*runlogOut)
		if err != nil {
			log.Fatalf("runlog: %v", err)
		}
		runlog = obs.NewRunLog(f, runID)
		runlogFile = f
		hooks = obs.Merge(hooks, obs.RunLogHooks(runlog))
	}
	var trace *obs.Trace
	if *traceOut != "" {
		trace = obs.NewTrace("samgen")
		root := trace.Root()
		root.SetAttr("seed", *seed)
		root.SetAttr("run_id", runID)
		obs.BuildMeta().SetAttrs(root)
	}
	tel := telemetry{
		hooks: hooks, trace: trace, traceOut: *traceOut,
		reg: reg, metricsOut: *metricsOut,
		runlog: runlog, runlogFile: runlogFile,
	}

	if *loadPath != "" {
		mf, err := os.Open(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
		model, err := ar.Load(mf)
		mf.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded model (%d parameters)", nn.NumParams(model.Net))
		// Target sizes come from the schema metadata file (the model file
		// stores the schema shape, not the row counts).
		sf, err := os.Open(*schemaPath)
		if err != nil {
			log.Fatal(err)
		}
		sspec, err := relation.ReadSpec(sf)
		sf.Close()
		if err != nil {
			log.Fatal(err)
		}
		generateAndWrite(model, sspec.Sizes(), genConfig{
			outDir: *outDir, samples: *samples, batch: *batch, seed: *seed,
			gam: !*noGam, stream: *stream, shards: *shards, workers: *workers,
			partitions: *partitions, keepSamples: *keepSamples,
		}, tel)
		return
	}

	sf, err := os.Open(*schemaPath)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := relation.ReadSpec(sf)
	sf.Close()
	if err != nil {
		log.Fatal(err)
	}
	shell, err := spec.EmptySchema()
	if err != nil {
		log.Fatal(err)
	}
	sizes := spec.Sizes()

	wf, err := os.Open(*wlPath)
	if err != nil {
		log.Fatal(err)
	}
	wl, err := workload.Read(wf)
	wf.Close()
	if err != nil {
		log.Fatal(err)
	}
	for i := range wl.Queries {
		if err := wl.Queries[i].Validate(shell); err != nil {
			log.Fatalf("workload query %d: %v", i, err)
		}
	}

	pop := *population
	if pop <= 0 {
		if !shell.SingleTable() {
			log.Fatal("multi-relation schema requires -population (the full outer join size)")
		}
		pop = float64(sizes[shell.Tables[0].Name])
	}

	layout := join.NewLayout(shell)
	cfg := ar.DefaultTrainConfig()
	cfg.Epochs = *epochs
	cfg.Model.Hidden = *hidden
	cfg.Model.Arch = *arch
	cfg.Seed = *seed
	cfg.Logf = log.Printf
	cfg.Hooks = tel.hooks
	cfg.Span = tel.trace.Root()
	log.Printf("training SAM on %d cardinality constraints (%d model columns)...", wl.Len(), layout.NumCols())
	start := time.Now()
	model, err := ar.Train(layout, wl, pop, cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("trained in %v (%d parameters)", time.Since(start).Round(time.Millisecond), nn.NumParams(model.Net))

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := model.Save(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("saved model to %s", *savePath)
	}

	generateAndWrite(model, sizes, genConfig{
		outDir: *outDir, samples: *samples, batch: *batch, seed: *seed,
		gam: !*noGam, stream: *stream, shards: *shards, workers: *workers,
		partitions: *partitions, keepSamples: *keepSamples,
	}, tel)
}

// telemetry bundles the optional observer state the flags configured.
type telemetry struct {
	hooks      *obs.Hooks
	trace      *obs.Trace
	traceOut   string
	reg        *obs.Registry
	metricsOut string
	runlog     *obs.RunLog
	runlogFile *os.File
}

// flush finishes every telemetry artifact the flags configured: ends and
// writes the trace (printing the phase summary), closes the run log, and
// snapshots the metrics registry as Prometheus text.
func (tel telemetry) flush() {
	if tel.trace != nil {
		tel.trace.Root().End()
		f, err := os.Create(tel.traceOut)
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		if err := tel.trace.WriteJSONL(f); err != nil {
			f.Close()
			log.Fatalf("trace: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("trace: %v", err)
		}
		fmt.Println("== phase trace ==")
		fmt.Print(tel.trace.Summary())
		log.Printf("trace written to %s", tel.traceOut)
	}
	if tel.runlog != nil {
		if err := tel.runlog.Close(); err != nil {
			log.Fatalf("runlog: %v", err)
		}
		if err := tel.runlogFile.Close(); err != nil {
			log.Fatalf("runlog: %v", err)
		}
	}
	if tel.metricsOut != "" {
		f, err := os.Create(tel.metricsOut)
		if err != nil {
			log.Fatalf("metrics-out: %v", err)
		}
		if err := obs.WritePrometheus(f, tel.reg); err != nil {
			f.Close()
			log.Fatalf("metrics-out: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("metrics-out: %v", err)
		}
	}
}

// genConfig bundles the generation-phase flag settings.
type genConfig struct {
	outDir      string
	samples     int
	batch       int
	seed        int64
	gam         bool
	stream      bool
	shards      int
	workers     int
	partitions  int
	keepSamples bool
}

// generateAndWrite runs the generation phase and writes one CSV per table —
// in memory by default, or via the sharded streaming pipeline with -stream.
func generateAndWrite(model *ar.Model, sizes map[string]int, cfg genConfig, tel telemetry) {
	gen, err := core.FromModel(model, sizes)
	if err != nil {
		log.Fatal(err)
	}
	if cfg.stream {
		opts := core.DefaultStreamOptions(cfg.seed+1, cfg.outDir)
		opts.Samples = cfg.samples
		opts.GroupAndMerge = cfg.gam
		opts.Batch = cfg.batch
		opts.Workers = cfg.workers
		opts.Shards = cfg.shards
		opts.Partitions = cfg.partitions
		opts.KeepSamples = cfg.keepSamples
		opts.Hooks = tel.hooks
		opts.Span = tel.trace.Root()
		start := time.Now()
		res, err := gen.GenerateStream(core.ModelSampler(model, opts.Batch), opts)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("generated database in %v (%d samples, streamed)", time.Since(start).Round(time.Millisecond), res.Samples)
		for _, t := range gen.Layout.Schema.Tables {
			log.Printf("wrote %s (%d rows, %d merge groups)", res.CSVPaths[t.Name], res.Rows[t.Name], res.Groups[t.Name])
		}
		tel.flush()
		return
	}
	opts := core.DefaultGenOptions(cfg.seed + 1)
	opts.Samples = cfg.samples
	opts.GroupAndMerge = cfg.gam
	opts.Batch = cfg.batch
	opts.Workers = cfg.workers
	opts.Hooks = tel.hooks
	opts.Span = tel.trace.Root()
	start := time.Now()
	db, err := gen.Generate(core.ModelSampler(model, opts.Batch), opts)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("generated database in %v", time.Since(start).Round(time.Millisecond))

	if err := os.MkdirAll(cfg.outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, t := range db.Tables {
		path := filepath.Join(cfg.outDir, t.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s (%d rows)", path, t.NumRows())
	}
	tel.flush()
}
