// Command sambench reproduces the SAM paper's evaluation tables and
// figures on the synthetic datasets (see DESIGN.md for the experiment
// index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	sambench [-scale quick|full] [-exp all|tab1..tab9|fig5..fig8] [-seed N] [-v]
//	sambench -tensorbench BENCH_tensor.json
//
// Experiments share trained models and generated databases within one
// invocation, so running -exp all is much cheaper than running each
// experiment separately.
//
// -tensorbench skips the experiments and instead micro-benchmarks the
// tensor hot paths (dense matmul, MADE training forward+backward, sampling
// forward, full train step), writing JSON with the current numbers next to
// the pre-overhaul baselines.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"sam/internal/experiments"
)

func main() {
	log.SetFlags(0)
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	expFlag := flag.String("exp", "all", "comma-separated experiment ids (tab1..tab9, fig5..fig8) or all")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("v", false, "log progress to stderr")
	tensorBench := flag.String("tensorbench", "", "write tensor hot-path benchmark JSON to this file and exit")
	flag.Parse()

	if *tensorBench != "" {
		rep := experiments.RunTensorBench()
		buf, err := rep.JSON()
		if err != nil {
			log.Fatalf("tensorbench: %v", err)
		}
		if err := os.WriteFile(*tensorBench, buf, 0o644); err != nil {
			log.Fatalf("tensorbench: %v", err)
		}
		for _, r := range rep.Results {
			fmt.Printf("%-24s %9d ns/op (%.2fx vs seed)  %d allocs/op (seed %d)\n",
				r.Name, r.NsOp, r.Speedup, r.AllocsOp, r.BeforeAllocsOp)
		}
		return
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.QuickScale()
	case "full":
		scale = experiments.FullScale()
	default:
		log.Fatalf("unknown -scale %q (want quick or full)", *scaleFlag)
	}
	scale.Seed = *seed

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[%s] %s\n", time.Now().Format("15:04:05"), fmt.Sprintf(format, args...))
		}
	}
	ctx := experiments.NewContext(scale, logf)

	runners := experiments.Runners()
	wanted := map[string]bool{}
	if *expFlag != "all" {
		for _, id := range strings.Split(*expFlag, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
		for id := range wanted {
			found := false
			for _, r := range runners {
				if r.ID == id {
					found = true
					break
				}
			}
			if !found {
				log.Fatalf("unknown experiment %q; known: %s", id, idList(runners))
			}
		}
	}

	start := time.Now()
	for _, r := range runners {
		if *expFlag != "all" && !wanted[r.ID] {
			continue
		}
		rep := r.Fn(ctx)
		fmt.Println(rep.String())
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "total: %v\n", time.Since(start).Round(time.Millisecond))
	}
}

func idList(rs []experiments.Runner) string {
	ids := make([]string, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	return strings.Join(ids, ", ")
}
