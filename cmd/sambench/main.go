// Command sambench reproduces the SAM paper's evaluation tables and
// figures on the synthetic datasets (see DESIGN.md for the experiment
// index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	sambench [-scale smoke|quick|full] [-exp all|tab1..tab9|fig5..fig8] [-seed N] [-v]
//	         [-trace out.jsonl] [-runlog run.jsonl] [-metrics-out metrics.prom]
//	         [-progress] [-debug-addr :6060]
//	sambench -tensorbench BENCH_tensor.json
//	sambench -scalebench BENCH_scale.json [-scalerows N] [-scaleshards N] \
//	         [-scaleworkers N] [-scalepartitions N] [-scaledir DIR] \
//	         [-trace out.jsonl] [-runlog run.jsonl] [-metrics-out metrics.prom]
//
// Experiments share trained models and generated databases within one
// invocation, so running -exp all is much cheaper than running each
// experiment separately.
//
// -trace records the run's phase tree (train/sample/weight/merge/eval
// spans with wall time and allocation deltas) as JSONL and prints its
// summary after the reports. -progress streams per-epoch training loss
// (with an ETA), throttled sampling progress, and per-phase generation
// stats to stderr. -debug-addr serves live net/http/pprof, expvar, the
// telemetry registry in Prometheus text format at /metrics (JSON at
// /metrics.json), and the recent-event ring at /debug/events while the
// run is hot. Traces written with -trace feed the samtrace analyzer.
// -runlog appends every pipeline event as structured JSONL and
// -metrics-out snapshots the final registry as Prometheus text; every
// invocation mints a run ID stamped into all artifacts (trace root,
// run-log lines, sam_run_info family, scalebench report), which is how
// cmd/samreport joins them back together.
//
// -tensorbench skips the experiments and instead micro-benchmarks the
// tensor hot paths (dense matmul, MADE training forward+backward, sampling
// forward, full train step), writing JSON with the current numbers next to
// the pre-overhaul baselines.
//
// -scalebench runs the sharded streaming-generation pipeline end to end at
// -scalerows rows and writes throughput plus peak-memory watermarks as
// JSON; benchgate turns that report into the CI scale gate (rows/sec floor
// and peak-memory ceiling).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"sam/internal/experiments"
	"sam/internal/obs"
)

func main() {
	log.SetFlags(0)
	scaleFlag := flag.String("scale", "quick", "experiment scale: smoke, quick or full")
	expFlag := flag.String("exp", "all", "comma-separated experiment ids (tab1..tab9, fig5..fig8) or all")
	seed := flag.Int64("seed", 1, "random seed")
	batch := flag.Int("batch", -1, "ancestral-sampling lanes per generation worker (-1 keeps the scale default, <=1 samples one tuple at a time)")
	verbose := flag.Bool("v", false, "log progress to stderr")
	tensorBench := flag.String("tensorbench", "", "write tensor hot-path benchmark JSON to this file and exit")
	scaleBench := flag.String("scalebench", "", "write sharded streaming-generation scale benchmark JSON to this file and exit")
	scaleRows := flag.Int("scalerows", 1_000_000, "rows to generate for -scalebench")
	scaleShards := flag.Int("scaleshards", 0, "sample shards for -scalebench (0 = auto)")
	scaleWorkers := flag.Int("scaleworkers", 0, "sampling workers for -scalebench (0 = GOMAXPROCS)")
	scalePartitions := flag.Int("scalepartitions", 0, "spill partitions for -scalebench (0 = 64)")
	scaleDir := flag.String("scaledir", "", "scratch directory for -scalebench shards and spill files (default: a temp dir)")
	traceOut := flag.String("trace", "", "write the run's phase trace (JSONL spans) to this file")
	runlogOut := flag.String("runlog", "", "append the run's structured events as JSONL (framed by run_start/run_end and stamped with the run ID) to this file")
	metricsOut := flag.String("metrics-out", "", "write the final telemetry registry in Prometheus text format to this file at exit")
	progress := flag.Bool("progress", false, "stream per-epoch training and per-phase generation progress to stderr")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /metrics on this address (e.g. :6060)")
	flag.Parse()

	if *tensorBench != "" {
		rep := experiments.RunTensorBench()
		buf, err := rep.JSON()
		if err != nil {
			log.Fatalf("tensorbench: %v", err)
		}
		if err := os.WriteFile(*tensorBench, buf, 0o644); err != nil {
			log.Fatalf("tensorbench: %v", err)
		}
		for _, r := range rep.Results {
			fmt.Printf("%-24s %9d ns/op (%.2fx vs seed)  %d allocs/op (seed %d)\n",
				r.Name, r.NsOp, r.Speedup, r.AllocsOp, r.BeforeAllocsOp)
		}
		return
	}

	// One run ID correlates every artifact this invocation emits — trace
	// root, event ring, sam_run_info family, run log, and the scalebench
	// report — so samreport can join them offline.
	runID := obs.NewRunID()
	reg := obs.Default()
	var hooks *obs.Hooks
	if *debugAddr != "" || *metricsOut != "" {
		obs.StampRunInfo(reg, runID, obs.BuildMeta())
		hooks = obs.MetricsHooks(reg)
	}
	if *debugAddr != "" {
		events := obs.NewEventLog(obs.DefaultEventLogSize)
		events.SetRunID(runID)
		hooks = obs.Merge(hooks, obs.EventLogHooks(events))
		addr, closeDebug, err := obs.ServeDebug(*debugAddr, reg, events)
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		defer closeDebug()
		fmt.Fprintf(os.Stderr, "debug server on http://%s (pprof, expvar, /metrics, /metrics.json, /debug/events)\n", addr)
	}
	if *progress {
		hooks = obs.Merge(hooks, obs.ProgressHooks(os.Stderr))
	}
	var runlog *obs.RunLog
	var runlogFile *os.File
	if *runlogOut != "" {
		f, err := os.Create(*runlogOut)
		if err != nil {
			log.Fatalf("runlog: %v", err)
		}
		runlog = obs.NewRunLog(f, runID)
		runlogFile = f
		hooks = obs.Merge(hooks, obs.RunLogHooks(runlog))
	}
	var trace *obs.Trace
	if *traceOut != "" {
		trace = obs.NewTrace("sambench")
		root := trace.Root()
		root.SetAttr("seed", *seed)
		root.SetAttr("run_id", runID)
		obs.BuildMeta().SetAttrs(root)
	}
	// flushTelemetry finishes the artifacts the flags configured; every
	// exit path below runs it after the work completes.
	flushTelemetry := func() {
		if trace != nil {
			trace.Root().End()
			f, err := os.Create(*traceOut)
			if err != nil {
				log.Fatalf("trace: %v", err)
			}
			if err := trace.WriteJSONL(f); err != nil {
				f.Close()
				log.Fatalf("trace: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("trace: %v", err)
			}
			fmt.Println("== phase trace ==")
			fmt.Print(trace.Summary())
			fmt.Printf("trace written to %s\n", *traceOut)
		}
		if runlog != nil {
			if err := runlog.Close(); err != nil {
				log.Fatalf("runlog: %v", err)
			}
			if err := runlogFile.Close(); err != nil {
				log.Fatalf("runlog: %v", err)
			}
		}
		if *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				log.Fatalf("metrics-out: %v", err)
			}
			if err := obs.WritePrometheus(f, reg); err != nil {
				f.Close()
				log.Fatalf("metrics-out: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("metrics-out: %v", err)
			}
		}
	}

	if *scaleBench != "" {
		if trace != nil {
			trace.Root().SetAttr("scalerows", *scaleRows)
		}
		rep, err := experiments.RunScaleBench(experiments.ScaleBenchConfig{
			Rows:       *scaleRows,
			Shards:     *scaleShards,
			Workers:    *scaleWorkers,
			Batch:      *batch,
			Partitions: *scalePartitions,
			Dir:        *scaleDir,
			Seed:       *seed,
			RunID:      runID,
			Hooks:      hooks,
			Span:       trace.Root(),
		})
		if err != nil {
			log.Fatalf("scalebench: %v", err)
		}
		buf, err := rep.JSON()
		if err != nil {
			log.Fatalf("scalebench: %v", err)
		}
		if err := os.WriteFile(*scaleBench, buf, 0o644); err != nil {
			log.Fatalf("scalebench: %v", err)
		}
		fmt.Printf("scalebench: %d rows in %dms (%.0f rows/sec end-to-end, %.0f sampling) across %d shards [run %s]\n",
			rep.Rows, rep.TotalWallMs, rep.RowsPerSec, rep.SampleRowsPerSec, rep.Shards, rep.RunID)
		fmt.Printf("scalebench: merge pass split weight=%dms A=%dms B=%dms C=%dms\n",
			rep.WeightWallMs, rep.PassAWallMs, rep.PassBWallMs, rep.PassCWallMs)
		fmt.Printf("scalebench: peak heap %.1f MiB, peak RSS %.1f MiB, shard bytes %.1f MiB\n",
			float64(rep.PeakHeapBytes)/(1<<20), float64(rep.PeakRSSBytes)/(1<<20), float64(rep.ShardBytes)/(1<<20))
		flushTelemetry()
		return
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "smoke":
		scale = experiments.SmokeScale()
	case "quick":
		scale = experiments.QuickScale()
	case "full":
		scale = experiments.FullScale()
	default:
		log.Fatalf("unknown -scale %q (want smoke, quick or full)", *scaleFlag)
	}
	scale.Seed = *seed
	if *batch >= 0 {
		scale.GenBatch = *batch
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[%s] %s\n", time.Now().Format("15:04:05"), fmt.Sprintf(format, args...))
		}
	}
	ctx := experiments.NewContext(scale, logf)
	if trace != nil {
		trace.Root().SetAttr("scale", *scaleFlag)
		trace.Root().SetAttr("experiments", *expFlag)
	}
	ctx.Hooks = hooks
	ctx.Span = trace.Root()

	runners := experiments.Runners()
	wanted := map[string]bool{}
	if *expFlag != "all" {
		for _, id := range strings.Split(*expFlag, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
		for id := range wanted {
			found := false
			for _, r := range runners {
				if r.ID == id {
					found = true
					break
				}
			}
			if !found {
				log.Fatalf("unknown experiment %q; known: %s", id, idList(runners))
			}
		}
	}

	start := time.Now()
	for _, r := range runners {
		if *expFlag != "all" && !wanted[r.ID] {
			continue
		}
		rep := r.Fn(ctx)
		fmt.Println(rep.String())
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "total: %v\n", time.Since(start).Round(time.Millisecond))
	}

	flushTelemetry()
}

func idList(rs []experiments.Runner) string {
	ids := make([]string, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	return strings.Join(ids, ", ")
}
