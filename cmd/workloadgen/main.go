// Command workloadgen generates and labels query workloads against one of
// the built-in synthetic datasets, writing the (query, cardinality) pairs
// as JSON and the schema metadata alongside. The output feeds cmd/samgen.
//
// Usage:
//
//	workloadgen -dataset census|dmv|imdb -rows N -queries N \
//	            -out workload.json -schema schema.json [-seed N] [-coverage R]
package main

import (
	"flag"
	"log"
	"math/rand"
	"os"

	"sam/internal/ar"
	"sam/internal/datagen"
	"sam/internal/engine"
	"sam/internal/metrics"
	"sam/internal/obs"
	"sam/internal/relation"
	"sam/internal/sqlparse"
	"sam/internal/workload"
)

func main() {
	log.SetFlags(0)
	dataset := flag.String("dataset", "census", "census, dmv, or imdb")
	rows := flag.Int("rows", 10000, "row count (titles for imdb)")
	queries := flag.Int("queries", 1000, "number of queries to generate")
	outPath := flag.String("out", "workload.json", "labeled workload output path")
	schemaPath := flag.String("schema", "schema.json", "schema metadata output path")
	seed := flag.Int64("seed", 1, "random seed")
	coverage := flag.Float64("coverage", 0, "restrict literals to this fraction of each domain (0 = full)")
	sqlFile := flag.String("sqlfile", "", "label the COUNT(*) SQL statements in this file instead of generating random queries")
	verifyModel := flag.String("verify-model", "", "also estimate the labeled cardinalities from this saved model (samgen -save) and report the Q-Error summary")
	batch := flag.Int("batch", 64, "estimation lanes for -verify-model (<=1 uses the per-tuple sampler)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /metrics on this address (e.g. :6060)")
	flag.Parse()

	if *debugAddr != "" {
		addr, closeDebug, err := obs.ServeDebug(*debugAddr, obs.Default(), nil)
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		defer closeDebug()
		log.Printf("debug server on http://%s (pprof, expvar, /metrics, /metrics.json)", addr)
	}

	var s *relation.Schema
	switch *dataset {
	case "census":
		s = datagen.Census(*seed, *rows)
	case "dmv":
		s = datagen.DMV(*seed, *rows)
	case "imdb":
		s = datagen.IMDB(*seed, *rows)
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}

	rng := rand.New(rand.NewSource(*seed + 1))
	var qs []workload.Query
	if *sqlFile != "" {
		raw, err := os.ReadFile(*sqlFile)
		if err != nil {
			log.Fatal(err)
		}
		qs, err = sqlparse.ParseAll(string(raw), s)
		if err != nil {
			log.Fatal(err)
		}
	} else if s.SingleTable() {
		opts := workload.DefaultSingleRelationOptions()
		opts.CoverageRatio = *coverage
		qs = workload.GenerateSingleRelation(rng, s.Tables[0], *queries, opts)
	} else {
		opts := workload.DefaultMultiRelationOptions()
		opts.CoverageRatio = *coverage
		qs = workload.GenerateMultiRelation(rng, s, *queries, opts)
	}
	wl := &workload.Workload{Queries: engine.Label(s, qs)}

	out, err := os.Create(*outPath)
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	if err := wl.Write(out); err != nil {
		log.Fatal(err)
	}

	sf, err := os.Create(*schemaPath)
	if err != nil {
		log.Fatal(err)
	}
	defer sf.Close()
	if err := s.Spec().WriteSpec(sf); err != nil {
		log.Fatal(err)
	}
	// The FOJ size is part of the schema-adjacent metadata samgen needs for
	// multi-relation training; record it as a note on stderr.
	if !s.SingleTable() {
		log.Printf("labeled %d queries; full outer join size = %d (pass to samgen -population)",
			wl.Len(), engine.FOJSize(s))
	} else {
		log.Printf("labeled %d queries over %d rows", wl.Len(), s.Tables[0].NumRows())
	}

	// Optional sanity check: how well a previously trained model predicts
	// the fresh workload's cardinalities, via batched progressive sampling.
	if *verifyModel != "" {
		mf, err := os.Open(*verifyModel)
		if err != nil {
			log.Fatal(err)
		}
		m, err := ar.Load(mf)
		mf.Close()
		if err != nil {
			log.Fatal(err)
		}
		eopts := ar.DefaultEvalOptions(*seed + 2)
		eopts.Batch = *batch
		qe := ar.EvalWorkload(m, wl.Queries, eopts, nil)
		sum := metrics.Summarize(qe)
		log.Printf("model %s vs workload: Q-Error median %.2f p90 %.2f max %.2f (%d queries, batch %d)",
			*verifyModel, sum.Median, sum.P90, sum.Max, len(qe), eopts.Batch)
	}
}
