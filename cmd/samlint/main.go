// Command samlint runs the project's static-analysis suite (package
// sam/internal/lint) over Go packages, in the spirit of a go/analysis
// multichecker.
//
// Usage:
//
//	go run ./cmd/samlint [flags] [packages]
//
// With no package patterns it checks ./... — it must run from inside the
// module, since type information is resolved through the go command.
// Unsuppressed findings are printed one per line and the exit status is 1;
// a clean run exits 0. Intentional exceptions are annotated in source with
// //lint:allow <analyzer> <reason> markers (see package sam/internal/lint).
//
// Flags:
//
//	-list    print the analyzers in the suite and exit
//	-fix     apply suggested fixes in place, then re-report what remains
//	-v       also show suppressed findings with their allow reasons
//	-json    emit findings as a JSON array (suppressed ones included,
//	         marked) instead of the line-oriented text format
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sam/internal/lint"
	"sam/internal/lint/analysis"
	"sam/internal/obs"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers in the suite and exit")
	fix := flag.Bool("fix", false, "apply suggested fixes in place")
	verbose := flag.Bool("v", false, "also show suppressed findings")
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	version := flag.Bool("version", false, "print build metadata and exit")
	flag.Parse()

	if *version {
		fmt.Println("samlint", obs.BuildMeta())
		return
	}

	suite := lint.Suite()
	if *list {
		for _, a := range suite {
			scope := "all packages"
			if a.PipelineOnly {
				scope = "pipeline packages"
			}
			fmt.Printf("%-14s %s [%s]\n", a.Name, a.Doc, scope)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if err := run(patterns, *fix, *verbose, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "samlint:", err)
		os.Exit(2)
	}
}

func run(patterns []string, fix, verbose, jsonOut bool) error {
	loader := analysis.NewLoader()
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return err
	}
	cfg := analysis.Config{IsPipeline: lint.IsPipelinePackage}
	findings, err := analysis.Run(pkgs, lint.Suite(), cfg)
	if err != nil {
		return err
	}

	if fix {
		fixed, err := applyFixes(loader, findings)
		if err != nil {
			return err
		}
		if fixed > 0 {
			fmt.Printf("samlint: applied fixes to %d file(s); re-checking\n", fixed)
			// Re-load and re-run so the report reflects post-fix state.
			loader = analysis.NewLoader()
			if pkgs, err = loader.Load(patterns...); err != nil {
				return err
			}
			if findings, err = analysis.Run(pkgs, lint.Suite(), cfg); err != nil {
				return err
			}
		}
	}

	if jsonOut {
		return reportJSON(findings)
	}
	bad := 0
	for _, f := range findings {
		if f.Suppressed {
			if verbose {
				fmt.Printf("%s: %s (%s, allowed: %s)\n", f.Pos, f.Message, f.Analyzer, f.SuppressReason)
			}
			continue
		}
		bad++
		fmt.Println(f)
	}
	if bad > 0 {
		fmt.Printf("samlint: %d finding(s)\n", bad)
		os.Exit(1)
	}
	return nil
}

// jsonFinding is the machine-readable projection of one finding, stable
// for editor integrations and the CI problem matcher's JSON consumers.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Fixable    bool   `json:"fixable,omitempty"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// reportJSON prints every finding — suppressed ones included, marked —
// as one JSON array, and keeps the text mode's exit contract: status 1
// when any unsuppressed finding remains.
func reportJSON(findings []analysis.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	bad := 0
	for _, f := range findings {
		if !f.Suppressed {
			bad++
		}
		out = append(out, jsonFinding{
			File:       f.Pos.Filename,
			Line:       f.Pos.Line,
			Col:        f.Pos.Column,
			Analyzer:   f.Analyzer,
			Message:    f.Message,
			Fixable:    len(f.Fixes) > 0,
			Suppressed: f.Suppressed,
			Reason:     f.SuppressReason,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	if bad > 0 {
		os.Exit(1)
	}
	return nil
}

// applyFixes writes every unsuppressed suggested fix back to disk and
// returns the number of files rewritten.
func applyFixes(loader *analysis.Loader, findings []analysis.Finding) (int, error) {
	sources := make(map[string][]byte)
	for _, f := range findings {
		if f.Suppressed || len(f.Fixes) == 0 {
			continue
		}
		src, err := os.ReadFile(f.Pos.Filename)
		if err != nil {
			return 0, err
		}
		sources[f.Pos.Filename] = src
	}
	patched, err := analysis.ApplyFixes(loader.Fset, sources, findings)
	if err != nil {
		return 0, err
	}
	for name, content := range patched {
		info, err := os.Stat(name)
		if err != nil {
			return 0, err
		}
		if err := os.WriteFile(name, content, info.Mode().Perm()); err != nil {
			return 0, err
		}
	}
	return len(patched), nil
}
