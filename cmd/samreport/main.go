// Command samreport fuses the artifacts one SAM run leaves behind into a
// single self-contained Markdown or HTML report: the phase trace
// (samgen/sambench -trace), a metrics payload (/metrics.json snapshot or
// Prometheus text, e.g. -metrics-out), the structured JSONL run log
// (-runlog), and the benchmark documents (BENCH_scale.json,
// BENCH_tensor.json). Inputs are joined by the run ID each artifact was
// stamped with; mixing artifacts from different runs is an error unless
// -allow-mismatch downgrades it to a warning in the report.
//
// Usage:
//
//	samreport [-trace run.jsonl] [-baseline old.jsonl] [-metrics metrics.prom]
//	          [-runlog run.log] [-scale BENCH_scale.json] [-tensor BENCH_tensor.json]
//	          [-format markdown|html] [-top N] [-o report.md] [-allow-mismatch]
//
// -baseline diffs the -trace span tree against a second trace (typically
// from an older commit), surfacing per-span wall and allocation deltas.
// -top bounds the hot-span and diff listings. With no -o the report goes
// to stdout.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sam/internal/obs"
	"sam/internal/report"
)

func main() {
	log.SetFlags(0)
	tracePath := flag.String("trace", "", "JSONL phase trace to analyze")
	baselinePath := flag.String("baseline", "", "baseline trace to diff -trace against")
	metricsPath := flag.String("metrics", "", "metrics payload: /metrics.json snapshot or Prometheus text (-metrics-out)")
	runlogPath := flag.String("runlog", "", "structured JSONL run log (-runlog)")
	scalePath := flag.String("scale", "", "scalebench report (BENCH_scale.json)")
	tensorPath := flag.String("tensor", "", "tensorbench report (BENCH_tensor.json)")
	format := flag.String("format", "markdown", "output format: markdown or html")
	top := flag.Int("top", 10, "hot spans / diff rows to list")
	out := flag.String("o", "", "write the report to this file (default stdout)")
	allowMismatch := flag.Bool("allow-mismatch", false, "tolerate inputs with differing run IDs (reported as a warning)")
	version := flag.Bool("version", false, "print build metadata and exit")
	flag.Parse()

	if *version {
		fmt.Println("samreport", obs.BuildMeta())
		return
	}
	if args := flag.Args(); len(args) > 0 {
		log.Fatalf("samreport: unexpected arguments %q (inputs are named by flags)", args)
	}

	rep, err := report.Build(report.Inputs{
		TracePath:     *tracePath,
		BaselinePath:  *baselinePath,
		MetricsPath:   *metricsPath,
		RunLogPath:    *runlogPath,
		ScalePath:     *scalePath,
		TensorPath:    *tensorPath,
		Top:           *top,
		AllowMismatch: *allowMismatch,
	})
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := rep.Write(w, *format); err != nil {
		log.Fatal(err)
	}
}
