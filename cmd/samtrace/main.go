// Command samtrace analyzes JSONL phase traces recorded by sambench
// -trace / samgen -trace. It aggregates spans by their root-to-span name
// path and reports, per path, total wall time, self time (total minus
// direct children), and allocation attribution — then the top-N hottest
// paths by self time. In diff mode it aligns two traces by path and
// reports per-span wall and allocation deltas, largest change first.
//
// Usage:
//
//	samtrace [-top N] trace.jsonl
//	samtrace diff [-top N] old.jsonl new.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sam/internal/obs"
)

func main() {
	log.SetFlags(0)
	top := flag.Int("top", 10, "hot spans to list (0 = all)")
	version := flag.Bool("version", false, "print build metadata and exit")
	flag.Usage = usage
	flag.Parse()
	if *version {
		fmt.Println("samtrace", obs.BuildMeta())
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	if args[0] == "diff" {
		// Re-parse flags after the subcommand so "samtrace diff -top 5 a b"
		// works too.
		fs := flag.NewFlagSet("samtrace diff", flag.ExitOnError)
		dtop := fs.Int("top", 0, "limit the diff to the N largest wall deltas (0 = all)")
		fs.Parse(args[1:])
		rest := fs.Args()
		if len(rest) != 2 {
			usage()
			os.Exit(2)
		}
		diff(rest[0], rest[1], *dtop)
		return
	}

	if len(args) != 1 {
		usage()
		os.Exit(2)
	}
	analyze(args[0], *top)
}

func usage() {
	fmt.Fprintf(os.Stderr, `samtrace analyzes JSONL phase traces (sambench -trace, samgen -trace).

Usage:
  samtrace [-top N] trace.jsonl          span tree with self/total wall and alloc, then top-N hot spans
  samtrace diff [-top N] old.jsonl new.jsonl   per-span wall/alloc deltas, largest first
  samtrace -version                      print build metadata
`)
	flag.PrintDefaults()
}

func readTraceFile(path string) []obs.SpanRecord {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	recs, err := obs.ReadTrace(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return recs
}

func analyze(path string, top int) {
	stats := obs.AnalyzeTrace(readTraceFile(path))
	fmt.Printf("== %s: %d span paths ==\n", path, len(stats))
	obs.WriteTraceTree(os.Stdout, stats)
	if top != 0 {
		fmt.Printf("\n== top %d by self time ==\n", top)
		obs.WriteTopSpans(os.Stdout, stats, top)
	}
}

func diff(pathA, pathB string, top int) {
	a := obs.AnalyzeTrace(readTraceFile(pathA))
	b := obs.AnalyzeTrace(readTraceFile(pathB))
	deltas := obs.DiffTraces(a, b)
	if top > 0 && len(deltas) > top {
		deltas = deltas[:top]
	}
	fmt.Printf("== diff: a=%s  b=%s ==\n", pathA, pathB)
	obs.WriteTraceDiff(os.Stdout, deltas)
}
