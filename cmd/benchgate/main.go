// Command benchgate turns committed benchmark JSON into pass/fail CI
// gates. It checks a fresh tensorbench report against a committed baseline
// and, optionally, a scalebench report against absolute floors, reporting
// EVERY violation before exiting nonzero — a run with three regressions
// prints three lines, not one:
//
//	benchgate -baseline BENCH_tensor.json -current /tmp/bench.json \
//	          -tol 0.25 -min sample_batched=6,sample_batched_workers=4 \
//	          -scale /tmp/scale.json -scale-min-rps 20000 -scale-max-mem 768
//
// -tol bounds the allowed ns/op regression per benchmark (0.25 = +25%);
// allocation growth always fails. -min names speedup-ratio floors, e.g.
// sample_batched=6 requires batched ancestral sampling to stay at least 6×
// the per-tuple sampler measured in the same run — a machine-independent
// ratio, unlike raw ns/op — and sample_batched_workers=4 gates the
// worker×lane composition, whose ratio sits below the single-worker one on
// single-core hosts (scheduling overhead, no scaling win).
//
// -scale gates a `sambench -scalebench` report: -scale-min-rps is the
// end-to-end generated rows/sec floor and -scale-max-mem (MiB) caps both
// the peak Go heap and the process VmHWM, the evidence that streaming
// generation stays bounded-memory at scale. Unreadable report files are
// themselves violations, not fatal errors, so one broken artifact cannot
// mask the other gate's result.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"sam/internal/experiments"
	"sam/internal/obs"
)

func readTensorReport(path string) (*experiments.TensorBenchReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep experiments.TensorBenchReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func readScaleReport(path string) (*experiments.ScaleBenchReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep experiments.ScaleBenchReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func parseMin(spec string) (map[string]float64, error) {
	if spec == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -min entry %q, want name=ratio", part)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -min ratio in %q: %w", part, err)
		}
		out[name] = f
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	baselinePath := flag.String("baseline", "BENCH_tensor.json", "committed baseline report")
	currentPath := flag.String("current", "", "freshly measured tensor report to gate")
	tol := flag.Float64("tol", 0.25, "allowed fractional ns/op regression per benchmark")
	minSpec := flag.String("min", "", "comma-separated speedup floors, e.g. sample_batched=3")
	scalePath := flag.String("scale", "", "scalebench report to gate (optional)")
	scaleMinRPS := flag.Float64("scale-min-rps", 0, "minimum end-to-end generated rows/sec for -scale (0 disables)")
	scaleMaxMem := flag.Int64("scale-max-mem", 0, "maximum peak heap/RSS in MiB for -scale (0 disables)")
	version := flag.Bool("version", false, "print build metadata and exit")
	flag.Parse()

	if *version {
		fmt.Println("benchgate", obs.BuildMeta())
		return
	}

	if *currentPath == "" && *scalePath == "" {
		log.Fatal("benchgate: nothing to gate; pass -current and/or -scale")
	}

	// Collect every violation across every requested gate before deciding
	// the exit code, so a single CI run surfaces the full damage report.
	var violations []string
	checked := 0

	if *currentPath != "" {
		baseline, berr := readTensorReport(*baselinePath)
		current, cerr := readTensorReport(*currentPath)
		minSpeedup, merr := parseMin(*minSpec)
		switch {
		case berr != nil:
			violations = append(violations, fmt.Sprintf("tensor: unreadable baseline: %v", berr))
		case cerr != nil:
			violations = append(violations, fmt.Sprintf("tensor: unreadable current report: %v", cerr))
		case merr != nil:
			violations = append(violations, fmt.Sprintf("tensor: %v", merr))
		default:
			violations = append(violations, experiments.CompareBench(baseline, current, *tol, minSpeedup)...)
			checked += len(baseline.Results)
		}
	}

	if *scalePath != "" {
		rep, err := readScaleReport(*scalePath)
		if err != nil {
			violations = append(violations, fmt.Sprintf("scale: unreadable report: %v", err))
		} else {
			if rep.RunID != "" {
				fmt.Printf("benchgate: scale report from run %s (pass split: sample=%dms weight=%dms A=%dms B=%dms C=%dms)\n",
					rep.RunID, rep.SampleWallMs, rep.WeightWallMs, rep.PassAWallMs, rep.PassBWallMs, rep.PassCWallMs)
			}
			violations = append(violations, experiments.CompareScale(rep, *scaleMinRPS, *scaleMaxMem<<20)...)
			checked++
		}
	}

	if len(violations) == 0 {
		fmt.Printf("benchgate: %d checks within bounds (tolerance %.0f%%)\n", checked, *tol*100)
		return
	}
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL "+v)
	}
	fmt.Fprintf(os.Stderr, "benchgate: %d violation(s)\n", len(violations))
	os.Exit(1)
}
