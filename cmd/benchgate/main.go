// Command benchgate compares a fresh tensorbench report against a
// committed baseline and exits nonzero when the hot paths regressed. CI
// runs it after `sambench -tensorbench` to turn the benchmark JSON into a
// pass/fail gate:
//
//	benchgate -baseline BENCH_tensor.json -current /tmp/bench.json \
//	          -tol 0.25 -min sample_batched=6,sample_batched_workers=4
//
// -tol bounds the allowed ns/op regression per benchmark (0.25 = +25%);
// allocation growth always fails. -min names speedup-ratio floors, e.g.
// sample_batched=6 requires batched ancestral sampling to stay at least 6×
// the per-tuple sampler measured in the same run — a machine-independent
// ratio, unlike raw ns/op — and sample_batched_workers=4 gates the
// worker×lane composition, whose ratio sits below the single-worker one on
// single-core hosts (scheduling overhead, no scaling win).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"sam/internal/experiments"
	"sam/internal/obs"
)

func readReport(path string) (*experiments.TensorBenchReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep experiments.TensorBenchReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func parseMin(spec string) (map[string]float64, error) {
	if spec == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -min entry %q, want name=ratio", part)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -min ratio in %q: %w", part, err)
		}
		out[name] = f
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	baselinePath := flag.String("baseline", "BENCH_tensor.json", "committed baseline report")
	currentPath := flag.String("current", "", "freshly measured report to gate (required)")
	tol := flag.Float64("tol", 0.25, "allowed fractional ns/op regression per benchmark")
	minSpec := flag.String("min", "", "comma-separated speedup floors, e.g. sample_batched=3")
	version := flag.Bool("version", false, "print build metadata and exit")
	flag.Parse()

	if *version {
		fmt.Println("benchgate", obs.BuildMeta())
		return
	}

	if *currentPath == "" {
		log.Fatal("benchgate: -current is required")
	}
	baseline, err := readReport(*baselinePath)
	if err != nil {
		log.Fatalf("benchgate: %v", err)
	}
	current, err := readReport(*currentPath)
	if err != nil {
		log.Fatalf("benchgate: %v", err)
	}
	minSpeedup, err := parseMin(*minSpec)
	if err != nil {
		log.Fatalf("benchgate: %v", err)
	}

	violations := experiments.CompareBench(baseline, current, *tol, minSpeedup)
	if len(violations) == 0 {
		fmt.Printf("benchgate: %d benchmarks within tolerance %.0f%%\n",
			len(baseline.Results), *tol*100)
		return
	}
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL "+v)
	}
	os.Exit(1)
}
