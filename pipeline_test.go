package sam_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"sam"
	"sam/internal/ar"
	"sam/internal/join"
	"sam/internal/relation"
	"sam/internal/workload"
)

// TestToolPipeline exercises the cmd/workloadgen → cmd/samgen data flow
// without spawning processes: schema spec and workload serialize to disk,
// a model trains from the deserialized artifacts, saves, reloads, and the
// generated tables round-trip through CSV.
func TestToolPipeline(t *testing.T) {
	dir := t.TempDir()

	// workloadgen phase: build dataset, label queries, write artifacts.
	orig := sam.CensusLike(5, 1500)
	queries := sam.GenerateQueries(6, orig, 150, sam.DefaultWorkloadOptions(orig))
	wl := &sam.Workload{Queries: sam.Label(orig, queries)}

	wlPath := filepath.Join(dir, "workload.json")
	wf, err := os.Create(wlPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := wl.Write(wf); err != nil {
		t.Fatal(err)
	}
	wf.Close()
	specPath := filepath.Join(dir, "schema.json")
	sf, err := os.Create(specPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.Spec().WriteSpec(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()

	// samgen phase: everything reloaded from disk; the original schema's
	// data never touches this half.
	sf2, err := os.Open(specPath)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := relation.ReadSpec(sf2)
	sf2.Close()
	if err != nil {
		t.Fatal(err)
	}
	shell, err := spec.EmptySchema()
	if err != nil {
		t.Fatal(err)
	}
	wf2, err := os.Open(wlPath)
	if err != nil {
		t.Fatal(err)
	}
	wl2, err := workload.Read(wf2)
	wf2.Close()
	if err != nil {
		t.Fatal(err)
	}
	for i := range wl2.Queries {
		if err := wl2.Queries[i].Validate(shell); err != nil {
			t.Fatalf("reloaded query %d: %v", i, err)
		}
	}

	layout := join.NewLayout(shell)
	cfg := ar.DefaultTrainConfig()
	cfg.Epochs = 6
	cfg.Model.Hidden = 24
	model, err := ar.Train(layout, wl2, float64(spec.Sizes()["census"]), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Save/load cycle, as samgen -save / -load does.
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	model2, err := ar.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	db, err := sam.Generate(model2, spec.Sizes(), sam.DefaultGenOptions(7))
	if err != nil {
		t.Fatal(err)
	}
	if db.Tables[0].NumRows() != 1500 {
		t.Fatalf("generated %d rows", db.Tables[0].NumRows())
	}

	// CSV round trip as samgen writes it.
	csvPath := filepath.Join(dir, "census.csv")
	cf, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Tables[0].WriteCSV(cf); err != nil {
		t.Fatal(err)
	}
	cf.Close()
	back, err := spec.EmptySchema()
	if err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Tables[0].ReadCSV(rf); err != nil {
		t.Fatal(err)
	}
	rf.Close()
	if back.Tables[0].NumRows() != 1500 {
		t.Fatalf("csv round trip lost rows: %d", back.Tables[0].NumRows())
	}
	// Evaluate fidelity on the reloaded CSV data.
	var qerrs []float64
	for i := range wl.Queries {
		got := sam.Card(back, &wl.Queries[i].Query)
		qerrs = append(qerrs, sam.QError(float64(got), float64(wl.Queries[i].Card)))
	}
	if sum := sam.Summarize(qerrs); sum.Median > 4 {
		t.Fatalf("pipeline fidelity degraded: %v", sum)
	}
}
