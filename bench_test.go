package sam_test

import (
	"strconv"
	"sync"
	"testing"

	"sam/internal/experiments"
)

// benchScale sits between the test suite's micro scale and sambench's
// quick scale: big enough that the comparisons keep their shape, small
// enough that `go test -bench=.` finishes in minutes on one core. The
// paper-scale reproduction is cmd/sambench (-scale quick|full).
func benchScale() experiments.Scale {
	s := experiments.QuickScale()
	s.CensusRows = 2500
	s.DMVRows = 1500
	s.IMDBTitles = 500
	s.CensusTrainQ = 300
	s.DMVTrainQ = 200
	s.IMDBTrainQ = 400
	s.TestQ = 100
	s.JOBLightQ = 30
	s.TinyCensusQ = 12
	s.TinyDMVQ = 7
	s.SmallIMDBQ = 40
	s.EvalInputQ = 100
	s.Epochs = 6
	s.Hidden = 24
	s.IMDBSamples = 10000
	s.Fig5SAMPoints = []int{50, 100, 200, 300}
	s.Fig5PGMPoints = []int{2, 4, 8}
	s.Fig6Samples = []int{2500, 5000, 10000}
	s.Fig7Fracs = []float64{0.33, 0.66, 1.0}
	s.Fig8Cov = []float64{0.5, 1.0}
	s.LatencyReps = 3
	return s
}

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
)

// sharedCtx builds one context for all benchmarks so trained models and
// generated databases are reused: the first benchmark touching a dataset
// pays its training cost, subsequent iterations measure evaluation.
func sharedCtx() *experiments.Context {
	benchOnce.Do(func() {
		benchCtx = experiments.NewContext(benchScale(), nil)
	})
	return benchCtx
}

// runExperiment drives one experiment and reports its headline number as a
// benchmark metric, logging the full reproduced table once.
func runExperiment(b *testing.B, fn func(*experiments.Context) *experiments.Report, metricCol int, metricName string) {
	b.Helper()
	ctx := sharedCtx()
	var rep *experiments.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = fn(ctx)
	}
	b.StopTimer()
	if len(rep.Rows) > 0 && metricCol >= 0 && metricCol < len(rep.Rows[len(rep.Rows)-1]) {
		if v, err := strconv.ParseFloat(rep.Rows[len(rep.Rows)-1][metricCol], 64); err == nil {
			b.ReportMetric(v, metricName)
		}
	}
	b.Logf("\n%s", rep.String())
}

// BenchmarkTable1InputQErrorFullScale — Table 1: Q-Error of input queries
// at full workload scale on Census and DMV (SAM only).
func BenchmarkTable1InputQErrorFullScale(b *testing.B) {
	runExperiment(b, experiments.Table1, 2, "medianQErr")
}

// BenchmarkTable2InputQErrorTiny — Table 2: Q-Error on the tiny workloads
// PGM can process, PGM vs SAM.
func BenchmarkTable2InputQErrorTiny(b *testing.B) {
	runExperiment(b, experiments.Table2, 3, "medianQErr")
}

// BenchmarkTable3IMDBInputQError — Table 3: IMDB input-query Q-Error, SAM
// vs SAM w/o Group-and-Merge.
func BenchmarkTable3IMDBInputQError(b *testing.B) {
	runExperiment(b, experiments.Table3, 1, "medianQErr")
}

// BenchmarkTable4IMDBSmallWorkload — Table 4: the small IMDB workload all
// three methods can process.
func BenchmarkTable4IMDBSmallWorkload(b *testing.B) {
	runExperiment(b, experiments.Table4, 1, "medianQErr")
}

// BenchmarkTable5TestQError — Table 5: unseen test queries on Census and
// DMV (database recovery).
func BenchmarkTable5TestQError(b *testing.B) {
	runExperiment(b, experiments.Table5, 2, "medianQErr")
}

// BenchmarkTable6JOBLight — Table 6: JOB-light joins on IMDB.
func BenchmarkTable6JOBLight(b *testing.B) {
	runExperiment(b, experiments.Table6, 1, "medianQErr")
}

// BenchmarkTable7CrossEntropy — Table 7: cross entropy of generated
// relations.
func BenchmarkTable7CrossEntropy(b *testing.B) {
	runExperiment(b, experiments.Table7, 1, "censusBits")
}

// BenchmarkTable8PerfDeviation — Table 8: performance deviation of test
// queries on Census and DMV.
func BenchmarkTable8PerfDeviation(b *testing.B) {
	runExperiment(b, experiments.Table8, 2, "medianDevMs")
}

// BenchmarkTable9IMDBPerfDeviation — Table 9: performance deviation of the
// JOB-light workload on IMDB.
func BenchmarkTable9IMDBPerfDeviation(b *testing.B) {
	runExperiment(b, experiments.Table9, 1, "medianDevMs")
}

// BenchmarkFigure5ProcessingTime — Figure 5: workload processing time
// scaling, SAM (linear) vs PGM (polynomial).
func BenchmarkFigure5ProcessingTime(b *testing.B) {
	runExperiment(b, experiments.Figure5, 3, "lastPointSec")
}

// BenchmarkFigure6GenerationSweep — Figure 6: generation time and Q-Error
// against the FOJ sample budget on IMDB.
func BenchmarkFigure6GenerationSweep(b *testing.B) {
	runExperiment(b, experiments.Figure6, 1, "genSec")
}

// BenchmarkFigure7WorkloadSize — Figure 7: recovery vs workload size on
// Census.
func BenchmarkFigure7WorkloadSize(b *testing.B) {
	runExperiment(b, experiments.Figure7, 1, "crossEntropyBits")
}

// BenchmarkFigure8Coverage — Figure 8: recovery vs workload coverage
// ratio on Census.
func BenchmarkFigure8Coverage(b *testing.B) {
	runExperiment(b, experiments.Figure8, 1, "crossEntropyBits")
}
