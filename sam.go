// Package sam is a from-scratch Go implementation of SAM — database
// generation from query workloads with supervised autoregressive models
// (Yang, Wu, Cong, Zhang & He, SIGMOD 2022).
//
// SAM never reads the target database. It consumes a query workload — a
// set of conjunctive (optionally joining) queries together with their true
// result cardinalities — trains a masked autoregressive model of the
// database's joint distribution with Differentiable Progressive Sampling,
// and then generates a synthetic database that satisfies the input
// cardinality constraints and approximates the hidden data distribution.
// Multi-relation schemas are handled through a single model of the full
// outer join with virtual fanout columns (whose zero bin carries the
// paper's indicator information); base relations are
// recovered with inverse probability weighting, scaling, and the
// Group-and-Merge join-key assignment algorithm.
//
// The minimal flow:
//
//	layout := sam.NewLayout(schemaMeta)                  // column layout (+virtual columns)
//	model, _ := sam.Train(layout, wl, population, cfg)   // learn from (query, cardinality) pairs
//	db, _ := sam.Generate(model, sizes, opts)            // synthesize the database
//
// where population is |T| for a single relation or the full-outer-join
// size for a join schema, and sizes holds the target row count per table.
//
// The subpackages are wired together here so downstream users need only
// this import; the internal packages also expose the evaluation substrate
// (query engine, metrics, dataset generators, and the PGM baseline of
// Arasu et al., SIGMOD'11) used by the benchmark harness in cmd/sambench.
package sam

import (
	"io"
	"math/rand"
	"time"

	"sam/internal/ar"
	"sam/internal/core"
	"sam/internal/datagen"
	"sam/internal/engine"
	"sam/internal/join"
	"sam/internal/metrics"
	"sam/internal/obs"
	"sam/internal/relation"
	"sam/internal/workload"
)

// Re-exported data-model types.
type (
	// Schema is a database: tables with tree-structured foreign keys.
	Schema = relation.Schema
	// Table is one relation.
	Table = relation.Table
	// Column is one attribute with a finite discrete domain.
	Column = relation.Column
	// ColumnKind distinguishes categorical from numeric columns.
	ColumnKind = relation.Kind

	// Query is a conjunction of predicates over a connected set of joined
	// relations.
	Query = workload.Query
	// Predicate is a single-column constraint (≤, ≥, =, IN).
	Predicate = workload.Predicate
	// CardQuery is a query plus its observed cardinality.
	CardQuery = workload.CardQuery
	// Workload is an ordered list of cardinality constraints.
	Workload = workload.Workload

	// Layout maps a schema onto the model's full-outer-join column space.
	Layout = join.Layout
	// Model is a trained SAM model.
	Model = ar.Model
	// TrainConfig controls Differentiable Progressive Sampling training.
	TrainConfig = ar.TrainConfig
	// ModelConfig controls model architecture and intervalization.
	ModelConfig = ar.Config
	// GenOptions controls database generation.
	GenOptions = core.GenOptions
	// EvalOptions controls model-side workload evaluation (EvalModel).
	EvalOptions = ar.EvalOptions
	// Summary is a median/p75/p90/mean/max metric aggregate.
	Summary = metrics.Summary

	// Hooks receives pipeline telemetry events; assign one to
	// TrainConfig.Hooks and GenOptions.Hooks (nil disables with zero
	// overhead). The event payloads are TrainEpoch, TrainStep, GenPhase,
	// and EvalQuery.
	Hooks = obs.Hooks
	// TrainEpoch is the per-epoch training telemetry event.
	TrainEpoch = obs.TrainEpoch
	// TrainStep is the per-optimizer-step training telemetry event.
	TrainStep = obs.TrainStep
	// GenPhase is the per-phase generation telemetry event (sample,
	// weight, merge).
	GenPhase = obs.GenPhase
	// GenProgress is the throttled in-flight sampling progress event
	// (done/total, rolling tuples/sec, ETA).
	GenProgress = obs.GenProgress
	// EvalQuery is the per-query evaluation telemetry event.
	EvalQuery = obs.EvalQuery
	// EventLog is a fixed-capacity ring of recent pipeline events, served
	// at /debug/events by ServeDebug.
	EventLog = obs.EventLog
	// Trace is a per-run tree of phase spans (wall time + allocation
	// deltas), serializable as JSONL.
	Trace = obs.Trace
	// Span is one node of a Trace; assign a parent span to
	// TrainConfig.Span / GenOptions.Span to nest pipeline phases under it.
	Span = obs.Span
	// Registry is a concurrent metrics registry (counters, gauges,
	// histograms).
	Registry = obs.Registry
)

// Column kinds.
const (
	Categorical = relation.Categorical
	Numeric     = relation.Numeric
)

// Predicate operators.
const (
	LE = workload.LE
	GE = workload.GE
	EQ = workload.EQ
	IN = workload.IN
)

// NewSchema validates that the tables form an acyclic foreign-key forest
// and returns the schema.
func NewSchema(tables ...*Table) (*Schema, error) { return relation.NewSchema(tables...) }

// NewColumn returns an empty column with the given domain size.
func NewColumn(name string, kind ColumnKind, numValues int) *Column {
	return relation.NewColumn(name, kind, numValues)
}

// NewTable returns a table over the given columns.
func NewTable(name string, cols ...*Column) *Table { return relation.NewTable(name, cols...) }

// NewLayout builds the full-outer-join model layout for a schema: every
// table's content columns plus a fanout virtual column for each
// foreign-key table (its zero bin is the paper's indicator).
func NewLayout(s *Schema) *Layout { return join.NewLayout(s) }

// DefaultTrainConfig returns CPU-scale training defaults (MADE backbone).
func DefaultTrainConfig() TrainConfig { return ar.DefaultTrainConfig() }

// DefaultTransformerModelConfig returns the causal-Transformer backbone
// configuration (the paper's alternative instantiation); assign it to
// TrainConfig.Model.
func DefaultTransformerModelConfig() ModelConfig { return ar.DefaultTransformerConfig() }

// Train fits a SAM model to the workload's cardinality constraints.
// population is |T| for a single-relation schema or the full-outer-join
// size for a join schema (a single aggregate the workload provider knows).
func Train(layout *Layout, wl *Workload, population float64, cfg TrainConfig) (*Model, error) {
	return ar.Train(layout, wl, population, cfg)
}

// DefaultGenOptions returns generation options matching the paper's main
// configuration (Group-and-Merge enabled).
func DefaultGenOptions(seed int64) GenOptions { return core.DefaultGenOptions(seed) }

// Generate synthesizes a database from a trained model. sizes gives the
// target row count per table. With opts.Batch > 1 each worker draws whole
// batches of tuples per forward sweep (batched ancestral sampling); the
// output is deterministic for a fixed (Seed, Workers, Batch) triple.
func Generate(m *Model, sizes map[string]int, opts GenOptions) (*Schema, error) {
	gen, err := core.FromModel(m, sizes)
	if err != nil {
		return nil, err
	}
	return gen.Generate(core.ModelSampler(m, opts.Batch), opts)
}

// Card executes a query against a database and returns its cardinality.
func Card(s *Schema, q *Query) int64 { return engine.Card(s, q) }

// Estimate predicts a query's cardinality from a trained model via
// progressive sampling with the given Monte-Carlo sample count — the
// model's view of the hidden database, usable before any generation.
func Estimate(m *Model, seed int64, q *Query, samples int) (float64, error) {
	return m.Estimate(rand.New(rand.NewSource(seed)), q, samples)
}

// WorkloadStats summarizes a workload's shape (filters, joins, operators,
// zero-result constraints).
func WorkloadStats(wl *Workload) workload.Stats { return workload.ComputeStats(wl) }

// FOJSize returns the full-outer-join size of a database — the population
// constant Train needs for join schemas.
func FOJSize(s *Schema) int64 { return engine.FOJSize(s) }

// Label evaluates queries against a database, producing the cardinality
// constraints SAM trains from.
func Label(s *Schema, queries []Query) []CardQuery { return engine.Label(s, queries) }

// QError returns max(est/truth, truth/est), both floored at 1.
func QError(est, truth float64) float64 { return metrics.QError(est, truth) }

// Summarize aggregates a metric sample (median/p75/p90/mean/max).
func Summarize(xs []float64) Summary { return metrics.Summarize(xs) }

// CrossEntropyBits measures how close a generated relation is to the
// original (Eq. 1 of the paper), in bits.
func CrossEntropyBits(orig, gen *Table) float64 { return metrics.CrossEntropyBits(orig, gen) }

// TimedCard executes a query and returns its cardinality with the
// wall-clock latency — the signal behind the paper's performance-deviation
// experiments.
func TimedCard(s *Schema, q *Query) (int64, time.Duration) { return engine.TimedCard(s, q) }

// WorkloadOptions controls query-workload generation (§5.1 of the paper).
type WorkloadOptions = workload.GenOptions

// DefaultWorkloadOptions returns the paper's single-relation workload
// settings (1–5 filters, ops {≤, =, ≥}, literals from sampled tuples) for
// single-table schemas and the MSCN-style settings (0–2 joins) otherwise.
func DefaultWorkloadOptions(s *Schema) WorkloadOptions {
	if s.SingleTable() {
		return workload.DefaultSingleRelationOptions()
	}
	return workload.DefaultMultiRelationOptions()
}

// GenerateQueries draws a random query workload against s following the
// paper's generation procedure.
func GenerateQueries(seed int64, s *Schema, n int, opts WorkloadOptions) []Query {
	rng := rand.New(rand.NewSource(seed))
	if s.SingleTable() {
		return workload.GenerateSingleRelation(rng, s.Tables[0], n, opts)
	}
	return workload.GenerateMultiRelation(rng, s, n, opts)
}

// NewTrace starts a run trace whose Root span can be handed to
// TrainConfig.Span and GenOptions.Span; after Root().End(), WriteJSONL
// serializes the phase tree and Summary renders it for humans.
func NewTrace(name string) *Trace { return obs.NewTrace(name) }

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// MetricsHooks returns hooks that feed every telemetry event into the
// registry (train_loss, train_step_seconds, labeled gen_tuples_total and
// gen_weight_mass families, eval_qerror, ...).
func MetricsHooks(r *Registry) *Hooks { return obs.MetricsHooks(r) }

// ProgressHooks returns hooks that stream human-readable progress (one
// line per epoch with an ETA, throttled sampling progress with tuples/sec,
// generation phases, and batches of evaluated queries) to w.
func ProgressHooks(w io.Writer) *Hooks { return obs.ProgressHooks(w) }

// MergeHooks fans every event out to all given hooks (nils are skipped).
func MergeHooks(hooks ...*Hooks) *Hooks { return obs.Merge(hooks...) }

// NewEventLog returns a ring buffer of the last capacity pipeline events;
// pass it to ServeDebug to expose /debug/events and feed it with
// EventLogHooks.
func NewEventLog(capacity int) *EventLog { return obs.NewEventLog(capacity) }

// EventLogHooks returns hooks that append every pipeline event to the ring.
func EventLogHooks(l *EventLog) *Hooks { return obs.EventLogHooks(l) }

// ServeDebug starts an HTTP server exposing /debug/pprof, /debug/vars
// (expvar), /metrics (Prometheus text format), /metrics.json (the registry
// snapshot as JSON), and — when ev is non-nil — /debug/events on addr. It
// returns the bound address (useful with ":0") and a close function that
// drains the server.
func ServeDebug(addr string, r *Registry, ev *EventLog) (string, func(), error) {
	return obs.ServeDebug(addr, r, ev)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (the same bytes /metrics serves).
func WritePrometheus(w io.Writer, r *Registry) error { return obs.WritePrometheus(w, r) }

// EvalWorkload executes each constraint's query against a database and
// returns the Q-Errors versus the recorded cardinalities, streaming
// per-query telemetry to h (which may be nil).
func EvalWorkload(s *Schema, queries []CardQuery, h *Hooks) []float64 {
	return engine.EvalWorkload(s, queries, h)
}

// DefaultEvalOptions returns the batched model-evaluation defaults.
func DefaultEvalOptions(seed int64) EvalOptions { return ar.DefaultEvalOptions(seed) }

// EvalModel estimates every constraint's cardinality directly from the
// model via (batched) progressive sampling — no generated database — and
// returns the Q-Errors versus the recorded cardinalities. Workers reuse
// warm samplers and every query has its own rng stream, so the result
// does not depend on opts.Workers.
func EvalModel(m *Model, queries []CardQuery, opts EvalOptions, h *Hooks) []float64 {
	return ar.EvalWorkload(m, queries, opts, h)
}

// CensusLike builds the census-like synthetic dataset (14 columns, domains
// 2–123, correlated) used by the benchmark harness; see DESIGN.md for the
// substitution rationale.
func CensusLike(seed int64, rows int) *Schema { return datagen.Census(seed, rows) }

// DMVLike builds the DMV-like synthetic dataset (11 columns, domains
// 2–2101).
func DMVLike(seed int64, rows int) *Schema { return datagen.DMV(seed, rows) }

// IMDBLike builds the JOB-light-style 6-relation star schema with
// heavy-tailed, parent-correlated fanouts.
func IMDBLike(seed int64, titleRows int) *Schema { return datagen.IMDB(seed, titleRows) }

// TPCHLike builds a TPC-H-flavoured depth-2 chain (customer ← orders ←
// lineitem), exercising recursive join-key assignment.
func TPCHLike(seed int64, customers int) *Schema { return datagen.TPCH(seed, customers) }
