package sam_test

import (
	"fmt"
	"math/rand"

	"sam"
)

// Example demonstrates the minimal end-to-end flow on a tiny hand-built
// relation: label a workload, train, generate, evaluate.
func Example() {
	// The hidden table: a single column whose distribution SAM must
	// recover from query cardinalities alone.
	rng := rand.New(rand.NewSource(1))
	col := sam.NewColumn("v", sam.Categorical, 4)
	for i := 0; i < 400; i++ {
		col.Append(int32(rng.Intn(2))) // only values 0 and 1 occur
	}
	hidden, err := sam.NewSchema(sam.NewTable("t", col))
	if err != nil {
		panic(err)
	}

	queries := []sam.Query{
		{Tables: []string{"t"}, Preds: []sam.Predicate{{Table: "t", Column: "v", Op: sam.LE, Code: 1}}},
		{Tables: []string{"t"}, Preds: []sam.Predicate{{Table: "t", Column: "v", Op: sam.GE, Code: 2}}},
		{Tables: []string{"t"}, Preds: []sam.Predicate{{Table: "t", Column: "v", Op: sam.EQ, Code: 0}}},
		{Tables: []string{"t"}, Preds: []sam.Predicate{{Table: "t", Column: "v", Op: sam.EQ, Code: 1}}},
	}
	wl := &sam.Workload{Queries: sam.Label(hidden, queries)}

	cfg := sam.DefaultTrainConfig()
	cfg.Epochs = 120
	cfg.LR = 0.05
	cfg.Model.Hidden = 8
	model, err := sam.Train(sam.NewLayout(hidden), wl, 400, cfg)
	if err != nil {
		panic(err)
	}
	db, err := sam.Generate(model, map[string]int{"t": 400}, sam.DefaultGenOptions(2))
	if err != nil {
		panic(err)
	}

	// Codes 2 and 3 never occur in the hidden data; the constraint
	// Card(v ≥ 2) = 0 teaches the model that.
	q := sam.Query{Tables: []string{"t"}, Preds: []sam.Predicate{{Table: "t", Column: "v", Op: sam.GE, Code: 2}}}
	fmt.Println("rows:", db.Tables[0].NumRows())
	fmt.Println("card(v>=2) small:", sam.Card(db, &q) < 20)
	// Output:
	// rows: 400
	// card(v>=2) small: true
}

// ExampleQError shows the fidelity metric used throughout the paper.
func ExampleQError() {
	fmt.Println(sam.QError(200, 100))
	fmt.Println(sam.QError(100, 200))
	fmt.Println(sam.QError(0, 0)) // both floored at 1
	// Output:
	// 2
	// 2
	// 1
}

// ExampleSummarize shows the percentile aggregation the paper's tables
// report.
func ExampleSummarize() {
	s := sam.Summarize([]float64{1, 1, 2, 4, 10})
	fmt.Printf("median=%.0f mean=%.1f max=%.0f\n", s.Median, s.Mean, s.Max)
	// Output:
	// median=2 mean=3.6 max=10
}
