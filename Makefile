# Single source of truth for lint tooling and pinned versions. CI calls
# these targets so local `make lint` and the CI lint job are identical; a
# version bump happens here and nowhere else.

STATICCHECK_VERSION ?= v0.4.7
GOVULNCHECK_VERSION ?= v1.1.3

GO ?= go

# Scale-gate knobs: CI runs the smoke size; the weekly scale workflow and
# local baseline refreshes override SCALE_ROWS (the committed
# BENCH_scale.json is a 1M-row run). The floors are deliberately loose —
# ~8x below measured rows/sec, ~10x above measured peak RSS — so they only
# trip on structural regressions (quadratic merge, samples held resident),
# not runner noise.
SCALE_ROWS ?= 200000
SCALE_OUT ?= BENCH_scale.json
SCALE_MIN_RPS ?= 20000
SCALE_MAX_MEM ?= 256

.PHONY: all build test race race-test lint fmt vet staticcheck samlint vuln \
	bench-gate scale-bench scale-gate trace-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## race-test exercises the concurrency-heavy layers under the race
## detector: the streaming core, obs, and relation test suites, then a
## real smoke-scale sharded generation run with worker fan-out enabled —
## the dynamic complement to what goleak/lockguard prove statically.
race-test:
	$(GO) test -race -count=1 ./internal/core/... ./internal/obs/... ./internal/relation/...
	$(GO) run -race ./cmd/sambench -scale smoke -exp tab1

## lint runs the full static-analysis stack in CI order: formatting,
## go vet, pinned staticcheck, then the project's own samlint suite.
lint: fmt vet staticcheck samlint

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck and govulncheck are fetched via `go run module@version`,
# which keeps CI-only dependencies out of go.mod. They need network access
# on first run; samlint (below) is fully in-repo and works offline.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# samlint builds the linter once and self-checks it on its own source
# first — the analysis engine and the analyzer suite must pass their own
# lint (fixtures under testdata are invisible to go list) — and only then
# analyzes the full module. A bug that makes samlint flag itself fails
# fast here, before its verdicts on the rest of the repo are trusted.
samlint:
	$(GO) build -o /tmp/samlint ./cmd/samlint
	/tmp/samlint ./internal/lint/... ./cmd/samlint
	/tmp/samlint ./...

vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

bench-gate:
	$(GO) build -o /tmp/sambench_gate ./cmd/sambench
	/tmp/sambench_gate -tensorbench /tmp/bench_current.json
	$(GO) run ./cmd/benchgate \
		-baseline BENCH_tensor.json \
		-current /tmp/bench_current.json \
		-tol 1.0 \
		-min sample_batched=6,sample_batched_workers=4

## scale-bench measures sharded streaming generation end to end at
## SCALE_ROWS rows and writes the report to SCALE_OUT; refresh the
## committed baseline with `make scale-bench SCALE_ROWS=1000000`.
scale-bench:
	$(GO) build -o /tmp/sambench_scale ./cmd/sambench
	/tmp/sambench_scale -scalebench $(SCALE_OUT) -scalerows $(SCALE_ROWS)

## scale-gate measures and then fails if throughput drops below
## SCALE_MIN_RPS rows/sec or peak heap/RSS exceeds SCALE_MAX_MEM MiB.
scale-gate: scale-bench
	$(GO) run ./cmd/benchgate \
		-scale $(SCALE_OUT) \
		-scale-min-rps $(SCALE_MIN_RPS) \
		-scale-max-mem $(SCALE_MAX_MEM)

## trace-smoke runs a real smoke-scale pipeline with every observability
## surface enabled — trace, run log, metrics dump — then analyzes the
## trace with samtrace and fuses all three artifacts into a samreport
## (which fails if their run IDs disagree); CI's "Trace and metrics
## smoke" step is exactly this target.
trace-smoke:
	$(GO) run ./cmd/sambench -scale smoke -exp tab1 -trace trace.jsonl \
		-runlog run.log -metrics-out metrics.prom -progress
	$(GO) run ./cmd/samtrace -top 5 trace.jsonl
	$(GO) run ./cmd/samtrace diff trace.jsonl trace.jsonl
	$(GO) run ./cmd/samreport -trace trace.jsonl -runlog run.log \
		-metrics metrics.prom -top 5 -o report.md
	@grep -q 'Run ID' report.md || { echo "samreport: no run ID in report.md"; exit 1; }
	$(GO) test -run 'TestSambenchTraceSmoke|TestSamreportSmoke|TestSambenchPrometheusEndpoint' -v .
