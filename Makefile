# Single source of truth for lint tooling and pinned versions. CI calls
# these targets so local `make lint` and the CI lint job are identical; a
# version bump happens here and nowhere else.

STATICCHECK_VERSION ?= v0.4.7
GOVULNCHECK_VERSION ?= v1.1.3

GO ?= go

.PHONY: all build test race lint fmt vet staticcheck samlint vuln bench-gate

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## lint runs the full static-analysis stack in CI order: formatting,
## go vet, pinned staticcheck, then the project's own samlint suite.
lint: fmt vet staticcheck samlint

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck and govulncheck are fetched via `go run module@version`,
# which keeps CI-only dependencies out of go.mod. They need network access
# on first run; samlint (below) is fully in-repo and works offline.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

samlint:
	$(GO) run ./cmd/samlint ./...

vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

bench-gate:
	$(GO) build -o /tmp/sambench_gate ./cmd/sambench
	/tmp/sambench_gate -tensorbench /tmp/bench_current.json
	$(GO) run ./cmd/benchgate \
		-baseline BENCH_tensor.json \
		-current /tmp/bench_current.json \
		-tol 1.0 \
		-min sample_batched=6,sample_batched_workers=4
